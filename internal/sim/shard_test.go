package sim

import (
	"reflect"
	"testing"
)

// TestGroupSingleShardIsSerial: a one-shard group must be the serial
// engine path, bit for bit — same event count, same clock, no workers.
func TestGroupSingleShardIsSerial(t *testing.T) {
	run := func(schedule func(e *Engine)) (uint64, Time) {
		g := NewGroup(1)
		schedule(g.Engine(0))
		g.RunUntil(1 * Microsecond)
		return g.Engine(0).Processed(), g.Engine(0).Now()
	}
	serial := func(schedule func(e *Engine)) (uint64, Time) {
		e := New()
		schedule(e)
		e.RunUntil(1 * Microsecond)
		return e.Processed(), e.Now()
	}
	schedule := func(e *Engine) {
		var tick func()
		tick = func() {
			if e.Now() < 900*Nanosecond {
				e.After(7*Nanosecond, tick)
			}
		}
		e.At(0, tick)
	}
	gn, gt := run(schedule)
	sn, st := serial(schedule)
	if gn != sn || gt != st {
		t.Fatalf("group(1) ran %d events to %v; serial engine %d to %v", gn, gt, sn, st)
	}
}

// TestGroupTokenRing circulates one token around n shards: each hop
// increments the local counter and injects the token into the next shard
// exactly one lookahead quantum later. The hop count and its distribution
// over shards are exact, so this checks window placement, the run/drain
// barriers, and cross-shard injection end to end.
func TestGroupTokenRing(t *testing.T) {
	const n = 4
	const look = 10 * Nanosecond
	const horizon = 1000 * Nanosecond

	g := NewGroup(n)
	g.NoteBoundary(look)
	counts := make([]int, n)
	var hop func(any)
	hop = func(arg any) {
		i := arg.(int)
		counts[i]++
		e := g.Engine(i)
		next := (i + 1) % n
		e.Inject(g.Engine(next), e.Now()+look, uint64(next+1)<<32|1, hop, next)
	}
	g.Engine(0).AtLinkCall(0, 1<<32, hop, 0)
	g.RunUntil(horizon)

	// Token visits times 0, L, 2L, ..., horizon inclusive.
	want := int(horizon/look) + 1
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != want {
		t.Fatalf("token made %d hops, want %d (counts %v)", total, want, counts)
	}
	for i, c := range counts {
		wi := want / n
		if i < want%n {
			wi++
		}
		if c != wi {
			t.Fatalf("shard %d saw %d hops, want %d (counts %v)", i, c, wi, counts)
		}
	}
	for i := 0; i < n; i++ {
		if now := g.Engine(i).Now(); now != horizon {
			t.Fatalf("shard %d clock %v after RunUntil(%v)", i, now, horizon)
		}
	}
}

// TestGroupResume: RunUntil must be resumable — the same token ring split
// across two RunUntil calls (workers are respawned per call) lands on the
// same totals as one call.
func TestGroupResume(t *testing.T) {
	const n = 3
	const look = 10 * Nanosecond
	run := func(splits ...Time) []int {
		g := NewGroup(n)
		g.NoteBoundary(look)
		counts := make([]int, n)
		var hop func(any)
		hop = func(arg any) {
			i := arg.(int)
			counts[i]++
			e := g.Engine(i)
			next := (i + 1) % n
			e.Inject(g.Engine(next), e.Now()+look, uint64(next+1)<<32|1, hop, next)
		}
		g.Engine(0).AtLinkCall(0, 1<<32, hop, 0)
		for _, s := range splits {
			g.RunUntil(s)
		}
		return counts
	}
	oneShot := run(1 * Microsecond)
	resumed := run(333*Nanosecond, 700*Nanosecond, 1*Microsecond)
	if !reflect.DeepEqual(oneShot, resumed) {
		t.Fatalf("split RunUntil diverged: %v vs %v", oneShot, resumed)
	}
}

// TestGroupInjectionOrdering: same-instant deliveries from different
// source shards must execute on the destination in delivery-key order,
// after any local event at that instant — the exact order the serial
// engine would have used, regardless of which source's queue drained
// first.
func TestGroupInjectionOrdering(t *testing.T) {
	g := NewGroup(3)
	g.NoteBoundary(10 * Nanosecond)
	const at = 100 * Nanosecond

	var order []string
	note := func(arg any) { order = append(order, arg.(string)) }

	// Shards 1 and 2 wake early and inject into shard 0 at the same
	// instant, with delivery keys in the opposite order of their wakeups.
	g.Engine(1).At(5*Nanosecond, func() {
		g.Engine(1).Inject(g.Engine(0), at, 2<<32|7, note, "link2")
	})
	g.Engine(2).At(6*Nanosecond, func() {
		g.Engine(2).Inject(g.Engine(0), at, 1<<32|7, note, "link1")
	})
	g.Engine(0).AtCall(at, note, "local")
	g.RunUntil(200 * Nanosecond)

	want := []string{"local", "link1", "link2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("same-instant execution order %v, want %v", order, want)
	}
}

// TestGroupNoBoundaryIndependent: with no registered boundaries the
// shards are fully independent and each runs straight to the horizon in
// one window.
func TestGroupNoBoundaryIndependent(t *testing.T) {
	g := NewGroup(2)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		e := g.Engine(i)
		e.Every(0, 3*Nanosecond, func() bool { counts[i]++; return true })
	}
	g.RunUntil(30 * Nanosecond)
	if counts[0] != 11 || counts[1] != 11 {
		t.Fatalf("independent shards ran %v ticks, want [11 11]", counts)
	}
}

// TestGroupBoundaryValidation: boundary lookahead must be positive, and
// the group lookahead is the minimum over boundaries.
func TestGroupBoundaryValidation(t *testing.T) {
	g := NewGroup(2)
	g.NoteBoundary(40 * Nanosecond)
	g.NoteBoundary(15 * Nanosecond)
	g.NoteBoundary(25 * Nanosecond)
	if g.Lookahead() != 15*Nanosecond {
		t.Fatalf("lookahead %v, want 15ns", g.Lookahead())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NoteBoundary(0) did not panic")
		}
	}()
	g.NoteBoundary(0)
}

// TestGroupCrossInjectToSelf: Inject with dst == src must behave exactly
// like AtLinkCall (no queue round-trip), preserving intra-shard ordering.
func TestGroupCrossInjectToSelf(t *testing.T) {
	g := NewGroup(2)
	e := g.Engine(0)
	var order []int
	e.At(0, func() {
		e.Inject(e, 10*Nanosecond, 2<<32, func(any) { order = append(order, 2) }, nil)
		e.Inject(e, 10*Nanosecond, 1<<32, func(any) { order = append(order, 1) }, nil)
	})
	g.RunUntil(20 * Nanosecond)
	if !reflect.DeepEqual(order, []int{1, 2}) {
		t.Fatalf("self-inject order %v, want [1 2]", order)
	}
}

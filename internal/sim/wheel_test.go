package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEngine is the pre-timing-wheel event core (a container/heap binary
// heap), kept verbatim as the ordering oracle: ascending timestamp, FIFO
// among same-instant events.
type refEngine struct {
	now    Time
	events refHeap
	seq    uint64
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = refEvent{}
	*h = old[:n-1]
	return ev
}

func (e *refEngine) At(t Time, fn func()) {
	if t < e.now {
		panic("ref: past")
	}
	e.seq++
	heap.Push(&e.events, refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(refEvent)
	e.now = ev.at
	ev.fn()
	return true
}

func (e *refEngine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// scheduler abstracts both engines for the differential driver.
type scheduler interface {
	schedule(t Time, fn func())
	now() Time
	step() bool
	runUntil(t Time)
}

type wheelSched struct{ e *Engine }

func (w wheelSched) schedule(t Time, fn func()) { w.e.At(t, fn) }
func (w wheelSched) now() Time                  { return w.e.Now() }
func (w wheelSched) step() bool                 { return w.e.Step() }
func (w wheelSched) runUntil(t Time)            { w.e.RunUntil(t) }

type refSched struct{ e *refEngine }

func (r refSched) schedule(t Time, fn func()) { r.e.At(t, fn) }
func (r refSched) now() Time                  { return r.e.now }
func (r refSched) step() bool                 { return r.e.Step() }
func (r refSched) runUntil(t Time)            { r.e.RunUntil(t) }

// driveSchedule runs one pseudo-random scenario on a scheduler and records
// the (event id, execution time) trace. Events reschedule follow-ups from
// inside their handlers — same-instant bursts, near deltas that stay in
// one wheel bucket, mid-range deltas that cross buckets, and far deltas
// (RTO-scale) that exercise the overflow heap and window re-anchoring.
func driveSchedule(s scheduler, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var trace []int64
	nextID := 0
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := nextID
		nextID++
		return func() {
			trace = append(trace, int64(id), int64(s.now()))
			if depth <= 0 {
				return
			}
			kids := rng.Intn(3)
			for k := 0; k < kids; k++ {
				var d Time
				switch rng.Intn(5) {
				case 0:
					d = 0 // same instant (FIFO tie-break)
				case 1:
					d = Time(rng.Intn(int(tickSpan))) // same/next bucket
				case 2:
					d = Time(rng.Intn(1 << 22)) // a few microseconds
				case 3:
					d = Time(rng.Intn(1 << 27)) // ~100 us: wheel span edge
				default:
					d = Time(rng.Intn(1 << 33)) // milliseconds: overflow heap
				}
				s.schedule(s.now()+d, spawn(depth-1))
			}
		}
	}
	// Seed events, including same-instant collisions.
	for i := 0; i < 40; i++ {
		s.schedule(Time(rng.Intn(1<<30)), spawn(4))
	}
	for i := 0; i < 8; i++ {
		s.schedule(12345, spawn(2))
	}
	// Interleave stepping with RunUntil jumps that park the clock between
	// events (exercises the cursor pull-back path).
	for i := 0; i < 10; i++ {
		s.runUntil(s.now() + Time(rng.Intn(1<<31)))
	}
	for s.step() {
	}
	return trace
}

// TestWheelMatchesHeapOrder pins the timing wheel's execution order to the
// old binary-heap engine across randomized schedules: identical event IDs
// at identical times, in identical order.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		got := driveSchedule(wheelSched{New()}, seed)
		want := driveSchedule(refSched{&refEngine{}}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace lengths differ: wheel %d vs heap %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: traces diverge at %d: wheel %d vs heap %d", seed, i, got[i], want[i])
			}
		}
	}
}

// TestWheelFarFutureMigration schedules events far beyond the wheel span
// and checks they fire in order after migrating from the overflow heap.
func TestWheelFarFutureMigration(t *testing.T) {
	e := New()
	var order []Time
	times := []Time{5 * Second, 3 * Millisecond, 70 * Microsecond, 100 * Nanosecond, 70*Microsecond + 1}
	for _, at := range times {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("out of order: %v", order)
		}
	}
	if len(order) != len(times) {
		t.Fatalf("ran %d events, want %d", len(order), len(times))
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

// TestWheelSameInstantAcrossOverflow checks the seq tie-break survives the
// wheel/overflow split: events at one far instant, scheduled at different
// points, still run FIFO.
func TestWheelSameInstantAcrossOverflow(t *testing.T) {
	e := New()
	const at = 10 * Millisecond
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
		if i == 9 {
			// Advance close to the target so later schedulings land in
			// the wheel while earlier ones migrated from the overflow.
			e.RunUntil(at - 10*Microsecond)
		}
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

// TestAtCallOrdering checks the cb/arg form interleaves with plain
// closures in strict schedule order.
func TestAtCallOrdering(t *testing.T) {
	e := New()
	var order []int
	push := func(a any) { order = append(order, a.(int)) }
	e.AtCall(100, push, 0)
	e.At(100, func() { order = append(order, 1) })
	e.AtCall(100, push, 2)
	e.AfterCall(50, push, 3) // at 50: runs first
	e.Run()
	want := []int{3, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEngineSteadyStateAllocs verifies the event core schedules and runs
// without heap allocation once warm (the pooled-event contract the
// zero-allocation data path builds on).
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := New()
	var tick func(any)
	tick = func(a any) {
		n := a.(int)
		if n > 0 {
			e.AfterCall(Time(n%3)*tickSpan, tick, n-1)
		}
	}
	// Warm up bucket capacity across a few full wheel rotations (bucket
	// slices grow lazily as the clock first visits them).
	e.AfterCall(1, tick, 5000)
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.AfterCall(1, tick, 50)
		e.Run()
	})
	// The arg int boxes into an interface on the first 256 values only;
	// steady state should be allocation-free.
	if allocs > 1 {
		t.Fatalf("engine steady-state allocs/run = %v, want <= 1", allocs)
	}
}

func BenchmarkEngineSchedule(b *testing.B) {
	e := New()
	b.ReportAllocs()
	var tick func(any)
	tick = func(a any) {}
	for i := 0; i < b.N; i++ {
		e.AfterCall(Time(i%4096), tick, nil)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkEngineScheduleFar(b *testing.B) {
	e := New()
	b.ReportAllocs()
	var tick func(any)
	tick = func(a any) {}
	span := Time(wheelSize) << tickBits
	for i := 0; i < b.N; i++ {
		e.AfterCall(span+Time(i%4096), tick, nil)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

package sim

// Queue is a FIFO of work items flowing between pipeline stages. It tracks
// occupancy statistics (used by the Table 2 profiling tracepoints) and
// supports bounded capacity with explicit overflow, mirroring the CLS ring
// buffers and IMEM/EMEM work queues of the NFP-4000.
type Queue[T any] struct {
	eng   *Engine
	name  string
	cap   int // 0 = unbounded
	items []T
	head  int

	// occupancy statistics (time-weighted)
	lastChange Time
	weighted   float64 // integral of occupancy over time, in item*ps
	maxOcc     int
	pushes     uint64
	drops      uint64
}

// NewQueue returns an empty queue. capacity 0 means unbounded.
func NewQueue[T any](eng *Engine, name string, capacity int) *Queue[T] {
	return &Queue[T]{eng: eng, name: name, cap: capacity}
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

func (q *Queue[T]) account() {
	now := q.eng.Now()
	q.weighted += float64(q.Len()) * float64(now-q.lastChange)
	q.lastChange = now
}

// Push appends an item. It reports false (and counts a drop) if the queue
// is at capacity.
func (q *Queue[T]) Push(v T) bool {
	if q.cap > 0 && q.Len() >= q.cap {
		q.drops++
		return false
	}
	q.account()
	q.items = append(q.items, v)
	q.pushes++
	if occ := q.Len(); occ > q.maxOcc {
		q.maxOcc = occ
	}
	return true
}

// Pop removes and returns the oldest item. ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	q.account()
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.items[q.head], true
}

// Drops returns the number of rejected pushes.
func (q *Queue[T]) Drops() uint64 { return q.drops }

// Pushes returns the number of accepted pushes.
func (q *Queue[T]) Pushes() uint64 { return q.pushes }

// MaxOccupancy returns the high-water mark.
func (q *Queue[T]) MaxOccupancy() int { return q.maxOcc }

// MeanOccupancy returns the time-weighted mean occupancy so far.
func (q *Queue[T]) MeanOccupancy() float64 {
	now := q.eng.Now()
	total := q.weighted + float64(q.Len())*float64(now-q.lastChange)
	if now == 0 {
		return 0
	}
	return total / float64(now)
}

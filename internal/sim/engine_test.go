package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if got := (2 * Microsecond).Microseconds(); got != 2 {
		t.Fatalf("Microseconds = %v", got)
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds = %v", got)
	}
}

func TestCyclesExactAt800MHz(t *testing.T) {
	// One 800 MHz FPC cycle is exactly 1250 ps.
	if got := Cycles(1, 800e6); got != 1250*Picosecond {
		t.Fatalf("Cycles(1, 800MHz) = %v", got)
	}
	if got := Cycles(1000, 800e6); got != 1250*Nanosecond {
		t.Fatalf("Cycles(1000, 800MHz) = %v", got)
	}
	// 2 GHz host core: 500 ps.
	if got := Cycles(3, 2e9); got != 1500*Picosecond {
		t.Fatalf("Cycles(3, 2GHz) = %v", got)
	}
}

func TestCyclesRounds(t *testing.T) {
	// 3 cycles at 2.35 GHz = 1276.59... ps, rounds to 1277.
	if got := Cycles(3, 2_350_000_000); got != 1277 {
		t.Fatalf("Cycles(3, 2.35GHz) = %v", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var hits []Time
	e.At(5, func() {
		hits = append(hits, e.Now())
		e.After(7, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 12 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	e.RunUntil(25)
	if e.Now() != 25 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	n := 0
	e.Every(100, 50, func() bool {
		n++
		return n < 4
	})
	e.Run()
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	if e.Now() != 100+3*50 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEveryCall(t *testing.T) {
	e := New()
	n := 0
	e.EveryCall(100, 50, func(a any) bool {
		p := a.(*int)
		*p++
		return *p < 4
	}, &n)
	e.Run()
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	if e.Now() != 100+3*50 {
		t.Fatalf("now = %v", e.Now())
	}
}

// TestEveryCallAllocFree: steady-state firings of an armed EveryCall
// must not allocate (the arming itself may allocate its one carrier).
func TestEveryCallAllocFree(t *testing.T) {
	e := New()
	n := 0
	e.EveryCall(0, 10, func(a any) bool { n++; return true }, nil)
	e.RunUntil(100) // warm up past the arming
	allocs := testing.AllocsPerRun(50, func() {
		e.RunUntil(e.Now() + 1000)
	})
	if allocs > 0 {
		t.Fatalf("EveryCall firing allocates %.1f/run", allocs)
	}
	if n == 0 {
		t.Fatal("callback never fired")
	}
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if !e.Stopped() {
		t.Fatal("not stopped")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q", 0)
	for i := 0; i < 200; i++ {
		q.Push(i)
	}
	for i := 0; i < 200; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestQueueCapacityAndDrops(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q", 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes under capacity failed")
	}
	if q.Push(3) {
		t.Fatal("push over capacity succeeded")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d", q.Drops())
	}
	q.Pop()
	if !q.Push(3) {
		t.Fatal("push after pop failed")
	}
}

func TestQueueOccupancyStats(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q", 0)
	e.At(0, func() { q.Push(1); q.Push(2) })
	e.At(100, func() { q.Pop() })
	e.At(200, func() { q.Pop() })
	e.Run()
	// Occupancy: 2 for [0,100), 1 for [100,200) => mean 1.5 over 200ps.
	if got := q.MeanOccupancy(); got != 1.5 {
		t.Fatalf("mean occupancy = %v", got)
	}
	if q.MaxOccupancy() != 2 {
		t.Fatalf("max occupancy = %d", q.MaxOccupancy())
	}
}

func TestQueueCompaction(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q", 0)
	// Interleave pushes and pops to force head movement + compaction.
	for i := 0; i < 10000; i++ {
		q.Push(i)
		if i%2 == 1 {
			v, ok := q.Pop()
			if !ok || v != i/2 {
				t.Fatalf("pop = %d, %v at i=%d", v, ok, i)
			}
		}
	}
	if q.Len() != 5000 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	// 1000 units/second => 1e9 ps per unit.
	r := NewResource(e, "link", 1000)
	var done []Time
	e.At(0, func() {
		r.Acquire(1, 0, func() { done = append(done, e.Now()) })
		r.Acquire(1, 0, func() { done = append(done, e.Now()) })
	})
	e.Run()
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	if done[0] != Time(1e9) || done[1] != Time(2e9) {
		t.Fatalf("completion times = %v", done)
	}
}

func TestResourceExtraLatencyDoesNotBlockPipe(t *testing.T) {
	e := New()
	r := NewResource(e, "pcie", 1000)
	var done []Time
	e.At(0, func() {
		// extra latency applies per transfer but doesn't occupy the wire.
		r.Acquire(1, 500, func() { done = append(done, e.Now()) })
		r.Acquire(1, 500, func() { done = append(done, e.Now()) })
	})
	e.Run()
	if done[0] != Time(1e9+500) || done[1] != Time(2e9+500) {
		t.Fatalf("completion times = %v", done)
	}
}

func TestTaskAccessors(t *testing.T) {
	task := TaskC(100).Add(50, 10*Nanosecond).Add(25, 5*Nanosecond)
	if task.Instructions() != 175 {
		t.Fatalf("instructions = %d", task.Instructions())
	}
	if task.StallTime() != 15*Nanosecond {
		t.Fatalf("stall = %v", task.StallTime())
	}
}

func TestQueuePropertyFIFO(t *testing.T) {
	// Property: any interleaving of pushes and pops preserves FIFO order.
	f := func(ops []bool) bool {
		e := New()
		q := NewQueue[int](e, "q", 0)
		next := 0
		expect := 0
		for _, push := range ops {
			if push {
				q.Push(next)
				next++
			} else if v, ok := q.Pop(); ok {
				if v != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package sim

// Step is one segment of a Task: a burst of straight-line computation
// followed by a stall (memory access, DMA wait, lock wait) during which the
// processor's issue slot is free for other hardware threads.
type Step struct {
	Compute int64 // instructions, executed at 1 instruction/cycle
	Stall   Time  // latency hidden from the issue slot
}

// Task is a unit of work submitted to a Proc: alternating compute bursts
// and stalls. Tasks are value types and may be built incrementally.
type Task struct {
	Steps []Step
}

// TaskC returns a Task consisting of a single compute burst.
func TaskC(instr int64) Task {
	return Task{Steps: []Step{{Compute: instr}}}
}

// Add appends a step and returns the task for chaining.
func (t Task) Add(instr int64, stall Time) Task {
	t.Steps = append(t.Steps, Step{Compute: instr, Stall: stall})
	return t
}

// Instructions returns the total compute in the task.
func (t Task) Instructions() int64 {
	var n int64
	for _, s := range t.Steps {
		n += s.Compute
	}
	return n
}

// StallTime returns the total stall time in the task.
func (t Task) StallTime() Time {
	var d Time
	for _, s := range t.Steps {
		d += s.Stall
	}
	return d
}

// Proc executes Tasks on simulated hardware. Implementations model how
// compute bursts contend for issue slots and whether stalls overlap with
// other work (the NFP's 8-threaded FPCs overlap them; a host core running a
// single thread does not).
type Proc interface {
	// Submit queues the task for execution; done runs (as a simulation
	// event) when the task completes. Submit never blocks the caller.
	Submit(t Task, done func())
	// Busy reports whether the processor currently has work in flight.
	Busy() bool
}

package sim

// Step is one segment of a Task: a burst of straight-line computation
// followed by a stall (memory access, DMA wait, lock wait) during which the
// processor's issue slot is free for other hardware threads.
type Step struct {
	Compute int64 // instructions, executed at 1 instruction/cycle
	Stall   Time  // latency hidden from the issue slot
}

// MaxTaskSteps bounds the steps in one Task. Tasks are value types with a
// fixed-size step array so that building one on the data path performs no
// heap allocation (the run-to-completion ablation's five-step task is the
// deepest in the tree); keeping the array tight matters because tasks are
// copied by value through every Submit.
const MaxTaskSteps = 6

// Task is a unit of work submitted to a Proc: alternating compute bursts
// and stalls. Tasks are value types and may be built incrementally.
type Task struct {
	n     int
	steps [MaxTaskSteps]Step
}

// TaskC returns a Task consisting of a single compute burst.
func TaskC(instr int64) Task {
	var t Task
	t.steps[0] = Step{Compute: instr}
	t.n = 1
	return t
}

// Add appends a step and returns the task for chaining.
func (t Task) Add(instr int64, stall Time) Task {
	if t.n >= MaxTaskSteps {
		panic("sim: task step overflow")
	}
	t.steps[t.n] = Step{Compute: instr, Stall: stall}
	t.n++
	return t
}

// NumSteps returns the number of steps in the task.
func (t *Task) NumSteps() int { return t.n }

// Step returns the i-th step.
func (t *Task) Step(i int) Step { return t.steps[i] }

// Instructions returns the total compute in the task.
func (t *Task) Instructions() int64 {
	var n int64
	for i := 0; i < t.n; i++ {
		n += t.steps[i].Compute
	}
	return n
}

// StallTime returns the total stall time in the task.
func (t *Task) StallTime() Time {
	var d Time
	for i := 0; i < t.n; i++ {
		d += t.steps[i].Stall
	}
	return d
}

// Proc executes Tasks on simulated hardware. Implementations model how
// compute bursts contend for issue slots and whether stalls overlap with
// other work (the NFP's 8-threaded FPCs overlap them; a host core running a
// single thread does not).
type Proc interface {
	// Submit queues the task for execution; done runs (as a simulation
	// event) when the task completes. Submit never blocks the caller.
	Submit(t Task, done func())
	// Busy reports whether the processor currently has work in flight.
	Busy() bool
}

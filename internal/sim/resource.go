package sim

// Resource models a serially-shared facility with a fixed service rate in
// bytes (or other units) per second: a PCIe link, a MAC serializer, a
// memory port. Acquire reserves the next free slot long enough to move n
// units and invokes done when the transfer completes.
type Resource struct {
	eng       *Engine
	name      string
	psPerUnit float64 // picoseconds to move one unit
	free      Time    // next instant the facility is idle
	busyAcc   Time    // total busy time, for utilization accounting
}

// NewResource returns a resource that moves unitsPerSecond units each
// simulated second.
func NewResource(eng *Engine, name string, unitsPerSecond float64) *Resource {
	if unitsPerSecond <= 0 {
		panic("sim: non-positive resource rate")
	}
	return &Resource{eng: eng, name: name, psPerUnit: 1e12 / unitsPerSecond}
}

// Acquire schedules a transfer of n units plus a fixed latency; done runs
// when the transfer finishes. It returns the completion time.
func (r *Resource) Acquire(n int64, extra Time, done func()) Time {
	end := r.reserve(n, extra)
	if done != nil {
		r.eng.At(end, done)
	}
	return end
}

// AcquireCall is the allocation-free form of Acquire: cb(arg) runs at
// completion, with cb a long-lived function value (see Engine.AtCall).
func (r *Resource) AcquireCall(n int64, extra Time, cb func(any), arg any) Time {
	end := r.reserve(n, extra)
	r.eng.AtCall(end, cb, arg)
	return end
}

// Reserve books the facility for n units without scheduling anything and
// returns the completion time (transfer end plus extra). Callers that
// need delivery-ordered scheduling (netsim's link egress) reserve first,
// then schedule through Engine.AtLinkCall/Inject with the completion
// time. The transfer occupies at least one picosecond when n > 0, so the
// returned time is always strictly after now plus extra — the property
// the sharding lookahead proof relies on.
func (r *Resource) Reserve(n int64, extra Time) Time {
	return r.reserve(n, extra)
}

// reserve books the facility for n units and returns the completion time.
func (r *Resource) reserve(n int64, extra Time) Time {
	now := r.eng.Now()
	start := r.free
	if start < now {
		start = now
	}
	dur := Time(float64(n) * r.psPerUnit)
	if dur < 1 && n > 0 {
		dur = 1
	}
	r.free = start + dur
	r.busyAcc += dur
	return r.free + extra
}

// NextFree returns when the resource next becomes idle.
func (r *Resource) NextFree() Time { return r.free }

// Utilization returns the fraction of simulated time the resource was busy.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	busy := r.busyAcc
	if r.free > now {
		busy -= r.free - now // don't count reserved future time
	}
	return float64(busy) / float64(now)
}

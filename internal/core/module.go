package core

import (
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/trace"
	"flextoe/internal/xdp"
)

// Module is a data-path extension inserted at the XDP ingress hook
// (§3.3). Modules keep private state (closure or eBPF maps), operate
// one-shot on raw segments, and forward computed metadata by mutating the
// packet; FlexTOE re-sequences segments after parallel module stages
// automatically (modules run before ticket assignment, so ordering is
// preserved by construction).
type Module = xdp.Program

// AttachXDP appends a program to the ingress chain. Programs run in
// attach order on the islands' idle FPCs; each charges its executed
// instruction count to the data-path. Attaching requires no reboot
// (§5.1: "Customizing FlexTOE is simple and does not require a system
// reboot").
func (t *TOE) AttachXDP(p xdp.Program) {
	t.xdpProgs = append(t.xdpProgs, p)
	if t.xdpSt == nil && t.mono == nil {
		// The paper leaves 3 unassigned FPCs per protocol island for
		// additional data-path modules (§4); the ingress hook itself
		// uses a pair of them.
		n := (t.cfg.FlowGroups + 1) / 2
		if n < 1 {
			n = 1
		}
		t.xdpSt = t.newStage("xdp", n, trace.TPQPre, t.xdpTask, t.xdpDone)
	}
}

// DetachXDP removes a program by name.
func (t *TOE) DetachXDP(name string) bool {
	for i, p := range t.xdpProgs {
		if p.Name() == name {
			t.xdpProgs = append(t.xdpProgs[:i], t.xdpProgs[i+1:]...)
			return true
		}
	}
	return false
}

// xdpWork carries the raw frame and the verdict through the XDP stage.
type xdpWork struct {
	frame   *netsim.Frame
	verdict xdp.Verdict
	data    []byte
	mutated bool
	instr   int64
}

func (t *TOE) xdpIngress(f *netsim.Frame) {
	// Serialize the frame: XDP programs see raw bytes, exactly as on the
	// NFP. The program chain runs functionally first to learn its
	// instruction count, then the stage charges that cost before the
	// verdict takes effect.
	data := f.Pkt.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
	pristine := append([]byte(nil), data...)
	w := &xdpWork{frame: f, data: data, verdict: xdp.Pass}
	ctx := &xdp.Context{Data: data}
	var total int64 = t.costs.XDPHook
	for _, p := range t.xdpProgs {
		v, instr := p.Run(ctx)
		total += instr + t.costs.XDPHook
		if v != xdp.Pass {
			w.verdict = v
			break
		}
	}
	w.mutated = !sameBytes(pristine, ctx.Data)
	w.data = ctx.Data
	w.instr = total
	item := &segItem{kind: segRX, entered: t.eng.Now()}
	item.pkt = f.Pkt
	t.xdpQueue(item, w)
}

func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// xdpQueue pushes the work through the XDP stage for cost accounting.
func (t *TOE) xdpQueue(item *segItem, w *xdpWork) {
	item.xdp = w
	t.xdpSt.push(item)
}

func (t *TOE) xdpTask(s *segItem) sim.Task {
	w := s.xdp
	// Programs touch the raw frame: charge a word per 8 bytes of packet
	// memory the hook makes addressable.
	return sim.TaskC(t.scale(w.instr + int64(len(w.data)/8)))
}

func (t *TOE) xdpDone(s *segItem) {
	w := s.xdp
	s.xdp = nil
	switch w.verdict {
	case xdp.Drop:
		t.XDPDrops++
	case xdp.TX:
		t.XDPTx++
		out, err := packet.Decode(w.data)
		if err != nil {
			t.XDPDrops++
			return
		}
		// FlexTOE updates the checksum of modified segments (§3.3).
		reser := out.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
		final, err := packet.Decode(reser)
		if err != nil {
			t.XDPDrops++
			return
		}
		final.TCP.Checksum = 0
		t.sendFrame(final)
	case xdp.Redirect:
		t.XDPRedirects++
		t.toControl(w.frame.Pkt)
	default: // Pass
		if w.mutated {
			out, err := packet.Decode(w.data)
			if err != nil {
				t.XDPDrops++
				return
			}
			w.frame.Pkt = out
		}
		t.rxToPre(w.frame)
	}
}

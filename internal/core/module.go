package core

import (
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/trace"
	"flextoe/internal/xdp"
)

// Module is a data-path extension inserted at the XDP ingress hook
// (§3.3). Modules keep private state (closure or eBPF maps), operate
// one-shot on raw segments, and forward computed metadata by mutating the
// packet; FlexTOE re-sequences segments after parallel module stages
// automatically (modules run before ticket assignment, so ordering is
// preserved by construction).
type Module = xdp.Program

// AttachXDP appends a program to the ingress chain. Programs run in
// attach order on the islands' idle FPCs; each charges its executed
// instruction count to the data-path. Attaching requires no reboot
// (§5.1: "Customizing FlexTOE is simple and does not require a system
// reboot").
func (t *TOE) AttachXDP(p xdp.Program) {
	t.xdpProgs = append(t.xdpProgs, p)
	if t.xdpSt == nil && t.mono == nil {
		// The paper leaves 3 unassigned FPCs per protocol island for
		// additional data-path modules (§4); the ingress hook itself
		// uses a pair of them.
		n := (t.cfg.FlowGroups + 1) / 2
		if n < 1 {
			n = 1
		}
		t.xdpSt = t.newStage("xdp", n, trace.TPQPre, t.xdpTask, t.xdpDone)
	}
}

// DetachXDP removes a program by name.
func (t *TOE) DetachXDP(name string) bool {
	for i, p := range t.xdpProgs {
		if p.Name() == name {
			t.xdpProgs = append(t.xdpProgs[:i], t.xdpProgs[i+1:]...)
			return true
		}
	}
	return false
}

// xdpWork carries the raw segment bytes and the verdict through the XDP
// stage. Works are pooled per TOE and own two reusable serialization
// buffers (the raw view handed to programs and the pristine copy used to
// detect mutation), so the hook's per-frame marshalling allocates nothing
// in steady state.
type xdpWork struct {
	pkt      *packet.Packet
	verdict  xdp.Verdict
	buf      []byte // owned backing the packet serializes into
	pristine []byte // owned copy for mutation detection
	data     []byte // program view (may be re-sliced or replaced)
	ctx      xdp.Context
	mutated  bool
	instr    int64
}

func (t *TOE) getXDPWork() *xdpWork {
	if w := t.xdpFree.Get(); w != nil {
		return w
	}
	return &xdpWork{}
}

func (t *TOE) putXDPWork(w *xdpWork) {
	w.pkt = nil
	w.data = nil
	w.ctx = xdp.Context{}
	t.xdpFree.Put(w)
}

func (t *TOE) xdpIngress(pkt *packet.Packet) {
	// Serialize the frame into the work's reusable buffer: XDP programs
	// see raw bytes, exactly as on the NFP. The program chain runs
	// functionally first to learn its instruction count, then the stage
	// charges that cost before the verdict takes effect.
	w := t.getXDPWork()
	w.pkt = pkt
	w.verdict = xdp.Pass
	n := pkt.WireLen()
	if cap(w.buf) < n {
		w.buf = make([]byte, n)
	}
	w.buf = w.buf[:n]
	pkt.SerializeTo(w.buf, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if cap(w.pristine) < n {
		w.pristine = make([]byte, n)
	}
	w.pristine = w.pristine[:n]
	copy(w.pristine, w.buf)
	w.ctx = xdp.Context{Data: w.buf}
	var total int64 = t.costs.XDPHook
	for _, p := range t.xdpProgs {
		v, instr := p.Run(&w.ctx)
		total += instr + t.costs.XDPHook
		if v != xdp.Pass {
			w.verdict = v
			break
		}
	}
	w.mutated = !sameBytes(w.pristine, w.ctx.Data)
	w.data = w.ctx.Data
	w.instr = total
	item := t.allocSeg()
	item.kind = segRX
	item.entered = t.eng.Now()
	item.pkt = pkt
	t.xdpQueue(item, w)
}

func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// xdpQueue pushes the work through the XDP stage for cost accounting.
func (t *TOE) xdpQueue(item *segItem, w *xdpWork) {
	item.xdp = w
	t.xdpSt.push(item)
}

func (t *TOE) xdpTask(s *segItem) sim.Task {
	w := s.xdp
	// Programs touch the raw frame: charge a word per 8 bytes of packet
	// memory the hook makes addressable.
	return sim.TaskC(t.scale(w.instr + int64(len(w.data)/8)))
}

func (t *TOE) xdpDone(s *segItem) {
	w := s.xdp
	pkt := s.pkt
	s.xdp = nil
	s.pkt = nil
	t.putSeg(s) // the pre-accounting item's journey ends at the hook
	switch w.verdict {
	case xdp.Drop:
		t.XDPDrops++
		packet.Release(pkt)
	case xdp.TX:
		t.XDPTx++
		packet.Release(pkt) // the rewritten bytes replace the original
		out, err := packet.Decode(w.data)
		if err != nil {
			t.XDPDrops++
			break
		}
		// FlexTOE updates the checksum of modified segments (§3.3).
		reser := out.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
		final, err := packet.Decode(reser)
		if err != nil {
			t.XDPDrops++
			break
		}
		final.TCP.Checksum = 0
		t.sendFrame(final)
	case xdp.Redirect:
		t.XDPRedirects++
		t.toControl(pkt)
	default: // Pass
		if w.mutated {
			// Re-decode from a fresh copy: the work's buffer is recycled,
			// so the new packet must not alias it.
			out, err := packet.Decode(append([]byte(nil), w.data...))
			if err != nil {
				t.XDPDrops++
				packet.Release(pkt)
				break
			}
			packet.Release(pkt)
			pkt = out
		}
		t.rxToPre(pkt)
	}
	t.putXDPWork(w)
}

package core

import (
	"bytes"
	"testing"

	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// TestWireOrderPerConnection verifies §3.2's end guarantee: despite
// replicated pipeline stages with variable latencies, the segments of one
// connection leave the NBI in non-decreasing sequence order (barring
// retransmissions, absent here). This is exactly the property the
// per-flow-group NBI reorder buffer exists to enforce — Fig. 7's
// "undesirable pipeline reordering" made impossible.
func TestWireOrderPerConnection(t *testing.T) {
	cfg := AgilioCX40Config()
	cfg.PreRepl = 4 // more replication = more opportunity to reorder
	cfg.PostRepl = 4
	p := newPair(t, cfg, cfg, netsim.SwitchConfig{}, 65536)

	lastSeq := map[packet.Flow]uint32{}
	violations := 0
	p.toeA.PacketTap = func(dir string, pkt *packet.Packet) {
		if dir != "tx" || len(pkt.Payload) == 0 {
			return
		}
		fl := pkt.Flow()
		if last, ok := lastSeq[fl]; ok && tcpseg.SeqLT(pkt.TCP.Seq, last) {
			violations++
		}
		lastSeq[fl] = pkt.TCP.Seq
	}

	data := testData(300000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
	if violations > 0 {
		t.Fatalf("%d wire-order violations (NBI reorder buffer failed)", violations)
	}
}

// TestAckPrecedesLaterData checks Fig. 7's third hazard: an ACK generated
// for received data must reach the wire before any data segment the
// protocol stage produced afterwards (per flow group). We verify the
// consequence: the peer never observes our cumulative ack field going
// backwards on the wire.
func TestAckPrecedesLaterData(t *testing.T) {
	p := defaultPair(t, 65536)
	lastAck := map[packet.Flow]uint32{}
	violations := 0
	p.toeB.PacketTap = func(dir string, pkt *packet.Packet) {
		if dir != "tx" {
			return
		}
		fl := pkt.Flow()
		if last, ok := lastAck[fl]; ok && tcpseg.SeqLT(pkt.TCP.Ack, last) {
			violations++
		}
		lastAck[fl] = pkt.TCP.Ack
	}
	// Bidirectional traffic maximizes interleaving of acks and data.
	dataA := testData(100000)
	dataB := testData(100000)
	p.eng.At(0, func() {
		p.a.send(dataA)
		p.b.send(dataB)
	})
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, dataA) || !bytes.Equal(p.a.got, dataB) {
		t.Fatalf("transfers incomplete: %d/%d and %d/%d",
			len(p.b.got), len(dataA), len(p.a.got), len(dataB))
	}
	if violations > 0 {
		t.Fatalf("%d ack-regression violations on the wire", violations)
	}
}

// TestTicketAccountingBalances verifies that every NBI ticket issued is
// eventually released or skipped — the deadlock-freedom invariant of the
// reorder buffers.
func TestTicketAccountingBalances(t *testing.T) {
	p := defaultPair(t, 32768)
	data := testData(150000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
	for _, toe := range []*TOE{p.toeA, p.toeB} {
		for _, isl := range toe.islands {
			if n := isl.entry.pendingHeld(); n != 0 {
				t.Errorf("fg%d entry ROB holds %d segments at quiescence", isl.fg, n)
			}
			if n := isl.nbi.pendingHeld(); n != 0 {
				t.Errorf("fg%d NBI ROB holds %d segments at quiescence", isl.fg, n)
			}
		}
	}
}

package core

import (
	"testing"

	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// benchPair wires two TOEs through a switch with one connection and
// applications that keep the sender's TX buffer full and drain the
// receiver immediately — a steady-state unidirectional bulk transfer
// whose per-segment cost is the data path itself, not the app.
type benchPair struct {
	eng  *sim.Engine
	toeA *TOE
	toeB *TOE
}

func newBenchPair(bufSize uint32) *benchPair {
	eng := sim.New()
	n := netsim.NewNetwork(eng, netsim.SwitchConfig{})
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	rate := netsim.GbpsToBytesPerSec(40)
	ifA := n.AttachHost("a", macA, rate, 100*sim.Nanosecond)
	ifB := n.AttachHost("b", macB, rate, 100*sim.Nanosecond)
	toeA := New(eng, AgilioCX40Config(), ifA)
	toeB := New(eng, AgilioCX40Config(), ifB)

	flowA := packet.Flow{SrcIP: packet.IP(10, 0, 0, 1), DstIP: packet.IP(10, 0, 0, 2), SrcPort: 1000, DstPort: 2000}
	var connA, connB *Conn
	// Sender: every TxFree notification is immediately re-filled, so the
	// TX buffer never drains.
	connA = toeA.AddConnection(flowA, macB, 0, 0,
		shm.NewPayloadBuf(bufSize), shm.NewPayloadBuf(bufSize), 0xA,
		func(d shm.Desc) {
			if d.Kind == shm.DescTxFree {
				toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: connA.ID, Bytes: d.Bytes})
			}
		})
	// Receiver: every RxNotify is consumed on the spot, so the window
	// never closes.
	connB = toeB.AddConnection(flowA.Reverse(), macA, 0, 0,
		shm.NewPayloadBuf(bufSize), shm.NewPayloadBuf(bufSize), 0xB,
		func(d shm.Desc) {
			if d.Kind == shm.DescRxNotify {
				toeB.InjectHC(shm.Desc{Kind: shm.DescRxConsume, Conn: connB.ID, Bytes: d.Bytes})
			}
		})
	_ = connB
	// Prime the transfer.
	toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: connA.ID, Bytes: bufSize})
	return &benchPair{eng: eng, toeA: toeA, toeB: toeB}
}

// runSegments steps the engine until the receiver has consumed n more
// data segments.
func (p *benchPair) runSegments(n uint64) {
	target := p.toeB.RxSegs + n
	for p.toeB.RxSegs < target {
		if !p.eng.Step() {
			panic("core: benchmark transfer stalled")
		}
	}
}

// BenchmarkPipelineSegment measures the full simulated data path per
// transmitted segment — sender pipeline, wire, receiver pipeline, ACK
// return, host notifications — in steady state. The headline metrics are
// ns/op (wall-clock per simulated segment) and allocs/op (the
// zero-allocation contract; see TestPipelineSteadyStateAllocBudget for
// the CI gate).
func BenchmarkPipelineSegment(b *testing.B) {
	p := newBenchPair(1 << 16)
	p.runSegments(2000) // warm pools, caches, wheel buckets
	b.ReportAllocs()
	b.ResetTimer()
	p.runSegments(uint64(b.N))
}

// TestPipelineSteadyStateAllocBudget is the benchmark-smoke gate: a
// steady-state simulated data segment must cost at most 2 heap
// allocations end to end (pooled events, segItems, packets, frames and
// payload slabs make the nominal path allocation-free; the budget leaves
// room for amortized container growth). Runs under plain `go test`, so CI
// needs no benchmark plumbing to enforce it.
func TestPipelineSteadyStateAllocBudget(t *testing.T) {
	p := newBenchPair(1 << 16)
	p.runSegments(2000)
	const segs = 500
	allocs := testing.AllocsPerRun(3, func() {
		p.runSegments(segs)
	})
	perSeg := allocs / segs
	t.Logf("steady-state allocs per simulated segment: %.3f", perSeg)
	if perSeg > 2 {
		t.Fatalf("allocs per segment = %.3f, budget is 2", perSeg)
	}
}

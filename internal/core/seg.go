package core

import (
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// segKind discriminates the three data-path workflows (§3.1).
type segKind uint8

const (
	segRX segKind = iota
	segTX
	segHC
)

// segItem is the work unit flowing between pipeline stages: a segment (or
// host-control descriptor) plus the metadata modules forward along the
// pipeline (§3.3: state that later stages need travels as metadata, never
// as shared state).
//
// Items are pooled per TOE (allocSeg/putSeg) and reference-counted:
// allocSeg hands out one reference, nbiSubmit takes a second for the
// reorder buffer, and the item recycles when the last holder drops its
// reference. This keeps the item alive whether the NBI releases it
// synchronously (in-order ticket) or long after the submitting stage
// moved on (held behind an earlier ticket).
type segItem struct {
	kind segKind
	conn uint32
	fg   int

	// toe owns the item's pool; set once at first allocation and
	// preserved across recycling so pooled completion callbacks
	// (sim.Engine.AtCall) can find their way back without a closure.
	toe  *TOE
	refs int8

	// connRef pins the connection across an asynchronous DMA so the
	// completion continues against the same state the issuing stage saw
	// (matching the closure capture the pipeline used to do).
	connRef *Conn

	// Sequencing (§3.2).
	ticket    uint64 // protocol-stage admission order, per flow group
	nbiTicket uint64 // NBI transmission order, per flow group
	hasNBI    bool

	// RX workflow.
	pkt  *packet.Packet
	info tcpseg.SegInfo
	rx   tcpseg.RXResult

	// TX workflow.
	tx tcpseg.TXResult

	// HC workflow.
	hc   shm.Desc
	hcOp tcpseg.HCOp

	// XDP stage carry-through.
	xdp *xdpWork

	// dropped marks a segment abandoned mid-pipeline (window closed,
	// connection removed); downstream stages release its resources.
	dropped bool

	// Timing diagnostics.
	entered sim.Time
}

// allocSeg takes a zeroed item from the TOE's pool with one reference.
func (t *TOE) allocSeg() *segItem {
	if s := t.segFree.Get(); s != nil {
		s.refs = 1
		return s
	}
	return &segItem{toe: t, refs: 1}
}

// putSeg drops one reference; the last drop recycles the item. The caller
// must not touch the item afterwards.
func (t *TOE) putSeg(s *segItem) {
	s.refs--
	if s.refs > 0 {
		return
	}
	if s.refs < 0 {
		panic("core: segItem over-released")
	}
	*s = segItem{toe: s.toe}
	t.segFree.Put(s)
}

// nbiSubmit hands the item to the island's NBI reorder buffer, which holds
// its own reference until nbiOut transmits it (possibly synchronously,
// inside this call).
func (t *TOE) nbiSubmit(isl *island, s *segItem) {
	s.refs++
	isl.nbi.submit(s.nbiTicket, s)
}

// rob is a reorder buffer (§3.2): segments carry tickets assigned at
// pipeline entry; the rob releases them to its output strictly in ticket
// order. Cancelled tickets (e.g. XDP_DROP after ticketing) are skipped so
// the stream never stalls.
type rob struct {
	next    uint64
	issued  uint64
	held    map[uint64]*segItem
	skipped map[uint64]bool
	out     func(*segItem)

	// Statistics.
	Holds    uint64 // segments that arrived out of ticket order
	Releases uint64
}

func newROB(out func(*segItem)) *rob {
	return &rob{
		held:    make(map[uint64]*segItem),
		skipped: make(map[uint64]bool),
		out:     out,
	}
}

// ticket hands out the next ticket in this rob's order domain.
func (r *rob) ticket() uint64 {
	t := r.issued
	r.issued++
	return t
}

// submit delivers a ticketed segment; the rob releases it (and any
// segments it unblocks) in order.
func (r *rob) submit(t uint64, s *segItem) {
	if t != r.next {
		r.held[t] = s
		r.Holds++
		return
	}
	r.release(s)
	r.drain()
}

// skip cancels a ticket (segment dropped mid-pipeline).
func (r *rob) skip(t uint64) {
	if t == r.next {
		r.next++
		r.drain()
		return
	}
	r.skipped[t] = true
}

func (r *rob) release(s *segItem) {
	r.next++
	r.Releases++
	r.out(s)
}

func (r *rob) drain() {
	for {
		if r.skipped[r.next] {
			delete(r.skipped, r.next)
			r.next++
			continue
		}
		s, ok := r.held[r.next]
		if !ok {
			return
		}
		delete(r.held, r.next)
		r.release(s)
	}
}

// pendingHeld returns how many segments wait in the buffer.
func (r *rob) pendingHeld() int { return len(r.held) }

package core

import (
	"bytes"
	"testing"

	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// endpoint is a minimal application driving one TOE connection directly
// through the host-control interface (libTOE provides the ergonomic
// wrapper; these tests exercise the data-path contract itself).
type endpoint struct {
	t      *TOE
	conn   *Conn
	txHead uint32 // stream offset of the next byte the app appends
	txFree uint32 // free TX buffer space (maintained from DescTxFree)
	rxHead uint32 // stream offset of the next byte the app reads
	got    []byte
	sent   []byte
	finRx  bool
}

func (e *endpoint) send(data []byte) {
	e.sent = append(e.sent, data...)
	e.pump()
}

// pump appends as much pending data as fits in the TX buffer.
func (e *endpoint) pump() {
	pending := uint32(len(e.sent)) - e.txHead
	if pending == 0 {
		return
	}
	n := pending
	if n > e.txFree {
		n = e.txFree
	}
	if n == 0 {
		return
	}
	e.conn.TxBuf.WriteAt(e.txHead, e.sent[e.txHead:e.txHead+n])
	e.txHead += n
	e.txFree -= n
	e.t.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: e.conn.ID, Bytes: n})
}

func (e *endpoint) notify(d shm.Desc) {
	switch d.Kind {
	case shm.DescRxNotify:
		buf := make([]byte, d.Bytes)
		e.conn.RxBuf.ReadAt(e.rxHead, buf)
		e.rxHead += d.Bytes
		e.got = append(e.got, buf...)
		e.t.InjectHC(shm.Desc{Kind: shm.DescRxConsume, Conn: e.conn.ID, Bytes: d.Bytes})
	case shm.DescTxFree:
		e.txFree += d.Bytes
		e.pump()
	case shm.DescFinRx:
		e.finRx = true
	}
}

// pair wires two TOEs through a switch and installs one connection.
type pair struct {
	eng        *sim.Engine
	net        *netsim.Network
	a, b       *endpoint
	toeA, toeB *TOE
}

func newPair(t *testing.T, cfgA, cfgB Config, swCfg netsim.SwitchConfig, bufSize uint32) *pair {
	t.Helper()
	eng := sim.New()
	n := netsim.NewNetwork(eng, swCfg)
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	rate := netsim.GbpsToBytesPerSec(40)
	ifA := n.AttachHost("a", macA, rate, 100*sim.Nanosecond)
	ifB := n.AttachHost("b", macB, rate, 100*sim.Nanosecond)
	toeA := New(eng, cfgA, ifA)
	toeB := New(eng, cfgB, ifB)

	flowA := packet.Flow{SrcIP: packet.IP(10, 0, 0, 1), DstIP: packet.IP(10, 0, 0, 2), SrcPort: 1000, DstPort: 2000}
	epA := &endpoint{t: toeA, txFree: bufSize}
	epB := &endpoint{t: toeB, txFree: bufSize}
	epA.conn = toeA.AddConnection(flowA, macB, 0, 0,
		shm.NewPayloadBuf(bufSize), shm.NewPayloadBuf(bufSize), 0xA, epA.notify)
	epB.conn = toeB.AddConnection(flowA.Reverse(), macA, 0, 0,
		shm.NewPayloadBuf(bufSize), shm.NewPayloadBuf(bufSize), 0xB, epB.notify)

	return &pair{eng: eng, net: n, a: epA, b: epB, toeA: toeA, toeB: toeB}
}

func defaultPair(t *testing.T, bufSize uint32) *pair {
	return newPair(t, AgilioCX40Config(), AgilioCX40Config(), netsim.SwitchConfig{}, bufSize)
}

func testData(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 251)
	}
	return b
}

func TestEndToEndSmallTransfer(t *testing.T) {
	p := defaultPair(t, 65536)
	data := testData(100)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(5 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("received %d bytes, want %d", len(p.b.got), len(data))
	}
	if p.toeB.RxSegs == 0 || p.toeA.TxSegs == 0 {
		t.Fatalf("counters: aTx=%d bRx=%d", p.toeA.TxSegs, p.toeB.RxSegs)
	}
}

func TestEndToEndMultiSegment(t *testing.T) {
	p := defaultPair(t, 65536)
	data := testData(20000) // ~14 MSS segments
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(20 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("received %d bytes, want %d", len(p.b.got), len(data))
	}
	if p.toeA.TxSegs < 14 {
		t.Fatalf("TxSegs = %d", p.toeA.TxSegs)
	}
	// FlexTOE acks every data segment (§5.2).
	if p.toeB.AcksSent < p.toeA.TxSegs {
		t.Fatalf("acks %d < data segs %d", p.toeB.AcksSent, p.toeA.TxSegs)
	}
}

func TestEndToEndLargerThanBuffers(t *testing.T) {
	// Transfer 10x the buffer size: exercises flow control, window
	// updates, and buffer wraparound continuously.
	p := defaultPair(t, 8192)
	data := testData(80000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("received %d bytes, want %d", len(p.b.got), len(data))
	}
}

func TestEndToEndBidirectional(t *testing.T) {
	p := defaultPair(t, 32768)
	dataA := testData(30000)
	dataB := testData(25000)
	p.eng.At(0, func() {
		p.a.send(dataA)
		p.b.send(dataB)
	})
	p.eng.RunUntil(50 * sim.Millisecond)
	if !bytes.Equal(p.b.got, dataA) {
		t.Fatalf("a->b: %d/%d", len(p.b.got), len(dataA))
	}
	if !bytes.Equal(p.a.got, dataB) {
		t.Fatalf("b->a: %d/%d", len(p.a.got), len(dataB))
	}
}

func TestEndToEndPingPong(t *testing.T) {
	// RPC-style: b echoes whatever it receives; a sends 50 requests.
	p := defaultPair(t, 65536)
	const msg = 64
	const rounds = 50
	recvB := 0
	origNotifyB := p.b.notify
	p.b.conn.Notify = func(d shm.Desc) {
		origNotifyB(d)
		if d.Kind == shm.DescRxNotify {
			recvB += int(d.Bytes)
			for recvB >= msg {
				recvB -= msg
				p.b.send(testData(msg)) // echo
			}
		}
	}
	sentRounds := 1
	recvA := 0
	origNotifyA := p.a.notify
	p.a.conn.Notify = func(d shm.Desc) {
		origNotifyA(d)
		if d.Kind == shm.DescRxNotify {
			recvA += int(d.Bytes)
			for recvA >= msg && sentRounds < rounds {
				recvA -= msg
				sentRounds++
				p.a.send(testData(msg))
			}
		}
	}
	p.eng.At(0, func() { p.a.send(testData(msg)) })
	p.eng.RunUntil(50 * sim.Millisecond)
	if len(p.a.got) != rounds*msg {
		t.Fatalf("a received %d bytes, want %d", len(p.a.got), rounds*msg)
	}
}

func TestFINTeardown(t *testing.T) {
	p := defaultPair(t, 16384)
	data := testData(500)
	p.eng.At(0, func() {
		p.a.send(data)
	})
	p.eng.At(2*sim.Millisecond, func() {
		p.a.t.InjectHC(shm.Desc{Kind: shm.DescFin, Conn: p.a.conn.ID})
	})
	p.eng.RunUntil(10 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("data lost: %d/%d", len(p.b.got), len(data))
	}
	if !p.b.finRx {
		t.Fatal("peer FIN not delivered")
	}
	if !p.a.conn.Proto.FinAcked() {
		t.Fatal("FIN not acknowledged")
	}
}

func TestSegPoolConserved(t *testing.T) {
	p := defaultPair(t, 32768)
	data := testData(50000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(60 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
	// All pools drain back to full when idle.
	for _, toe := range []*TOE{p.toeA, p.toeB} {
		if got := toe.segPool.InUse(); got != 0 {
			t.Errorf("%v segPool leaked %d buffers", toe.iface.Name, got)
		}
		if got := toe.descPool.InUse(); got != 0 {
			t.Errorf("%v descPool leaked %d descriptors", toe.iface.Name, got)
		}
	}
}

func TestRetransmitAfterLossViaHC(t *testing.T) {
	// Drop heavily for the first 2ms, then repair; control-plane-style
	// retransmit HC recovers the stream.
	p := newPair(t, AgilioCX40Config(), AgilioCX40Config(),
		netsim.SwitchConfig{LossProb: 0.3, Seed: 5}, 32768)
	data := testData(30000)
	p.eng.At(0, func() { p.a.send(data) })
	// Simple RTO loop: fire a go-back-N reset every 3ms if b hasn't
	// finished (the real control plane runs this per connection).
	for i := 1; i <= 100; i++ {
		at := sim.Time(i) * 3 * sim.Millisecond
		p.eng.At(at, func() {
			if len(p.b.got) < len(data) {
				if at > 12*sim.Millisecond {
					p.net.Switch.Config().LossProb = 0 // network heals
				}
				p.a.t.InjectHC(shm.Desc{Kind: shm.DescRetransmit, Conn: p.a.conn.ID})
			}
		})
	}
	p.eng.RunUntil(400 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("stream not recovered: %d/%d", len(p.b.got), len(data))
	}
}

func TestProtocolAdmissionInOrder(t *testing.T) {
	// The §3.2 invariant: despite replicated pre-processing with variable
	// lookup stalls, segments reach each protocol worker in ticket order.
	p := defaultPair(t, 65536)
	var lastTicket = map[int]uint64{}
	violations := 0
	for _, isl := range p.toeB.islands {
		isl := isl
		orig := isl.entry.out
		isl.entry.out = func(s *segItem) {
			if last, ok := lastTicket[isl.fg]; ok && s.ticket != last+1 {
				violations++
			}
			lastTicket[isl.fg] = s.ticket
			orig(s)
		}
	}
	data := testData(40000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(50 * sim.Millisecond)
	if violations > 0 {
		t.Fatalf("%d protocol admission order violations", violations)
	}
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
}

func TestReorderBufferExercised(t *testing.T) {
	// With replication and cache-dependent stalls, some segments must
	// actually arrive out of order at the ROB (otherwise §3.2's machinery
	// is dead code in the model).
	cfg := AgilioCX40Config()
	cfg.PreRepl = 4
	p := newPair(t, cfg, cfg, netsim.SwitchConfig{}, 65536)
	data := testData(200000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
	var holds uint64
	for _, isl := range append(p.toeA.islands, p.toeB.islands...) {
		holds += isl.entry.Holds + isl.nbi.Holds
	}
	if holds == 0 {
		t.Log("warning: no reordering observed; ROB not exercised in this run")
	}
}

func TestRunToCompletionMode(t *testing.T) {
	cfg := AgilioCX40Config()
	cfg.RunToCompletion = true
	cfg.ThreadsPerFPC = 1
	p := newPair(t, cfg, cfg, netsim.SwitchConfig{}, 32768)
	data := testData(10000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("mono transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
}

func TestRunToCompletionSlowerThanPipeline(t *testing.T) {
	transferTime := func(cfg Config) sim.Time {
		p := newPair(t, cfg, AgilioCX40Config(), netsim.SwitchConfig{}, 65536)
		data := testData(100000)
		var doneAt sim.Time
		orig := p.b.notify
		p.b.conn.Notify = func(d shm.Desc) {
			orig(d)
			if len(p.b.got) >= len(data) && doneAt == 0 {
				doneAt = p.eng.Now()
			}
		}
		p.eng.At(0, func() { p.a.send(data) })
		p.eng.RunUntil(2 * sim.Second)
		if !bytes.Equal(p.b.got, data) {
			t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
		}
		return doneAt
	}
	mono := AgilioCX40Config()
	mono.RunToCompletion = true
	mono.ThreadsPerFPC = 1
	tMono := transferTime(mono)
	tPipe := transferTime(AgilioCX40Config())
	if tPipe*2 >= tMono {
		t.Fatalf("pipeline (%v) not meaningfully faster than run-to-completion (%v)", tPipe, tMono)
	}
}

func TestX86PortTransfers(t *testing.T) {
	p := newPair(t, X86Config(true), X86Config(true), netsim.SwitchConfig{}, 65536)
	data := testData(50000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(100 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("x86 port transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
}

func TestBlueFieldPortTransfers(t *testing.T) {
	p := newPair(t, BlueFieldConfig(false), BlueFieldConfig(false), netsim.SwitchConfig{}, 65536)
	data := testData(30000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(200 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("BlueField port transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
}

func TestDelayedAckExtension(t *testing.T) {
	cfgB := AgilioCX40Config()
	cfgB.AckEvery = 2
	p := newPair(t, AgilioCX40Config(), cfgB, netsim.SwitchConfig{}, 65536)
	data := testData(100000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(200 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("delayed-ack transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
	if p.toeB.AcksSuppressed == 0 {
		t.Fatal("no acks suppressed with AckEvery=2")
	}
	if p.toeB.AcksSent >= p.toeA.TxSegs {
		t.Fatalf("delayed acks: sent %d acks for %d segments", p.toeB.AcksSent, p.toeA.TxSegs)
	}
}

func TestConnStatsPoll(t *testing.T) {
	p := defaultPair(t, 32768)
	data := testData(20000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(30 * sim.Millisecond)
	st := p.toeA.ReadStats(p.a.conn.ID)
	if st.AckedBytes == 0 {
		t.Fatal("no acked bytes recorded")
	}
	// Counters clear on read (§D: per-RTT control-plane poll).
	st2 := p.toeA.ReadStats(p.a.conn.ID)
	if st2.AckedBytes != 0 {
		t.Fatalf("stats not cleared: %+v", st2)
	}
}

func TestRemoveConnectionStopsTraffic(t *testing.T) {
	p := defaultPair(t, 32768)
	data := testData(500000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.At(5*sim.Microsecond, func() {
		p.toeB.RemoveConnection(p.b.conn.ID)
	})
	p.eng.RunUntil(30 * sim.Millisecond)
	if len(p.b.got) >= len(data) {
		t.Fatal("transfer completed despite removal")
	}
	// Segments for the removed connection go to the control plane.
	if p.toeB.RxToControl == 0 {
		t.Fatal("no segments redirected to control plane after removal")
	}
}

func runLossyTransfer(t *testing.T, oooIntervals int, seed uint64) *pair {
	t.Helper()
	cfg := AgilioCX40Config()
	cfg.OOOIntervals = oooIntervals
	p := newPair(t, cfg, cfg, netsim.SwitchConfig{LossProb: 0.25, Seed: seed}, 32768)
	data := testData(30000)
	p.eng.At(0, func() { p.a.send(data) })
	for i := 1; i <= 150; i++ {
		at := sim.Time(i) * 3 * sim.Millisecond
		p.eng.At(at, func() {
			if len(p.b.got) < len(data) {
				if at > 12*sim.Millisecond {
					p.net.Switch.Config().LossProb = 0 // network heals
				}
				p.a.t.InjectHC(shm.Desc{Kind: shm.DescRetransmit, Conn: p.a.conn.ID})
			}
		})
	}
	p.eng.RunUntil(500 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("stream not recovered: %d/%d", len(p.b.got), len(data))
	}
	return p
}

func TestMultiIntervalReassemblyUnderLoss(t *testing.T) {
	// N=1 (the paper's configuration): loss-induced holes produce OOO
	// accepts and, with a single interval, disjoint drops. DropsAvoided
	// must be structurally impossible.
	p1 := runLossyTransfer(t, 1, 7)
	if p1.toeB.OOOAccepted == 0 {
		t.Fatal("no OOO segments under 25% loss")
	}
	if p1.toeB.OOODropsAvoided != 0 {
		t.Fatalf("N=1 cannot avoid drops: %d", p1.toeB.OOODropsAvoided)
	}
	if p1.toeB.OOOOccupancy.MaxSeen() > 1 {
		t.Fatalf("N=1 occupancy exceeded 1: %v", p1.toeB.OOOOccupancy.Dist())
	}

	// N=4: same loss process; multiple concurrent holes are tracked and
	// the occupancy histogram sees deeper sets.
	p4 := runLossyTransfer(t, 4, 7)
	if p4.toeB.OOOAccepted == 0 || p4.toeB.OOOOccupancy.Count() == 0 {
		t.Fatal("no OOO activity recorded")
	}
	if p4.toeB.OOOOccupancy.MaxSeen() < 2 {
		t.Fatalf("N=4 never tracked more than one interval: %v", p4.toeB.OOOOccupancy.Dist())
	}
	if p4.toeB.OOODropsAvoided == 0 {
		t.Fatal("N=4 avoided no drops under this loss pattern")
	}
	if p4.toeB.OOOMerges == 0 {
		t.Fatal("no interval merges recorded")
	}
}

func TestOOOIntervalConfigClamped(t *testing.T) {
	cfg := AgilioCX40Config()
	cfg.OOOIntervals = 100
	cfg.Validate()
	if cfg.OOOIntervals != tcpseg.MaxOOOIntervals {
		t.Fatalf("OOOIntervals not clamped: %d", cfg.OOOIntervals)
	}
	var zero Config
	zero.Validate()
	if zero.OOOIntervals != 1 {
		t.Fatalf("default OOOIntervals = %d, want 1", zero.OOOIntervals)
	}
}

// Package core implements the FlexTOE data-path (§3): a fine-grained
// data-parallel pipeline of processing modules — pre-processing, protocol,
// post-processing, DMA and context-queue stages — executing on simulated
// SmartNIC flow processing cores, with per-flow-group islands, segment
// sequencing and reordering, a Carousel flow scheduler, an extensible
// module/XDP API, and one-shot segment handling (payload moves directly
// between the wire and per-socket host buffers; the NIC never buffers
// segments).
//
// The identical pipeline runs on three platforms (§4, §E): the Agilio-CX40
// NFP-4000 model, and x86/BlueField ports where stages map to symmetric
// cores with software rings and an extra netif stage. Platform differences
// are confined to Config.
package core

import (
	"flextoe/internal/nfp"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// Config shapes one FlexTOE data-path instance.
type Config struct {
	NFP nfp.Config // processor/memory model

	// Pipeline geometry (§4 "FPC mapping").
	FlowGroups int // protocol islands (Agilio CX: 4)
	PreRepl    int // pre-processing FPCs per flow group
	ProtoRepl  int // protocol FPCs per flow group (atomic per connection)
	PostRepl   int // post-processing FPCs per flow group
	DMARepl    int // DMA manager FPCs on the service island
	CtxRepl    int // context-queue FPCs on the service island

	ThreadsPerFPC int // hardware threads (8; 1 in the Table 3 ablation)

	// Ablation switches (Table 3).
	RunToCompletion bool // entire data-path on one FPC, no pipeline

	// Protocol parameters.
	MSS           uint32
	AckEvery      int // 1 = ack every data segment (paper); N>1 = delayed ACKs extension
	UseTimestamps bool
	// OOOIntervals is the receive-reassembly interval-set capacity per
	// connection. 1 (default) reproduces the paper's TAS-style single
	// interval within the Table 5 state budget; up to
	// tcpseg.MaxOOOIntervals trades 8 B of protocol state per extra
	// interval for fewer out-of-order drops under heavy reordering.
	OOOIntervals int
	// EnableSACK lets the control plane negotiate SACK-permitted on new
	// connections: the protocol stage then advertises the reassembly
	// interval set as SACK blocks in ACKs and recovers from duplicate
	// ACKs with selective retransmission (a bounded per-connection
	// scoreboard, 8 B per interval in use beyond the Table 5 budget)
	// instead of go-back-N. Off (default) reproduces the paper's
	// TAS-style recovery exactly.
	EnableSACK bool
	// AdaptiveOOO lets the control plane steer per-connection OOOCap at
	// runtime against a fleet-wide interval budget (OOOStateBudget),
	// using the OOOOccupancy histogram as the pressure signal. New and
	// active connections adopt the controller's cap lazily
	// (SetDynOOOCap); OOOIntervals remains the starting point.
	AdaptiveOOO bool
	// OOOStateBudget is the total number of reassembly intervals the
	// fleet may hold when AdaptiveOOO is on (0 = 4096). The controller
	// divides it by the live connection count to derive the per-conn cap.
	OOOStateBudget int

	// Resource pools (bounded, §3.1.1).
	SegPoolSize  int // CTM segment buffers
	DescPoolSize int // HC descriptor buffers

	// Scheduler wheel (§3.4).
	SchedSlot  sim.Time
	SchedSlots int

	// Platform adjustments for the x86/BlueField ports (§E).
	SoftwareRings   bool    // inter-stage queues cost ring ops instead of CLS rings
	NetifStage      bool    // extra DPDK netif module
	CostScale       float64 // instruction-count multiplier (ISA/IPC difference)
	CopyBytesPerSec float64 // memcpy bandwidth for the shared-memory "DMA" stage; 0 = use PCIe DMA engine
	FlatMemory      bool    // hardware cache hierarchy: state accesses cost a flat latency
	FlatMemCycles   int
}

// AgilioCX40Config is the paper's primary target (§4): four flow-group
// islands with 4 pre/post FPCs each, protocol FPCs per island, service
// island running scheduler/DMA/context queues.
func AgilioCX40Config() Config {
	return Config{
		NFP:           nfp.AgilioCX40(),
		FlowGroups:    4,
		PreRepl:       2,
		ProtoRepl:     2,
		PostRepl:      2,
		DMARepl:       4,
		CtxRepl:       2,
		ThreadsPerFPC: 8,
		MSS:           1448,
		AckEvery:      1,
		UseTimestamps: true,
		SegPoolSize:   512,
		DescPoolSize:  256,
		SchedSlot:     2 * sim.Microsecond,
		SchedSlots:    4096,
		CostScale:     1.0,
	}
}

// X86Config is the x86 port (§E): one pipeline (no flow groups), symmetric
// 2.35 GHz cores, software rings, shared-memory copies, extra netif stage.
// FlexTOE-scalar uses 7 cores; the 2× configuration replicates pre and
// post for 9.
func X86Config(replicated bool) Config {
	c := Config{
		NFP: nfp.Config{
			FPCHz:            2350e6,
			Threads:          1,
			LocalMemCycles:   1,
			CLSCycles:        4, // L2-ish
			IMEMCycles:       14,
			EMEMCycles:       40,
			DRAMCycles:       90,
			LocalCAMEntries:  64,
			CLSCacheEntries:  1 << 16,
			EMEMCacheEntries: 1 << 20,
			PreLookupEntries: 1 << 12,
			PCIeBytesPerSec:  12e9,
			PCIeLatency:      sim.Nanosecond, // shared memory, not PCIe
			DMAMaxInflight:   64,
			MMIOLatency:      100 * sim.Nanosecond,
		},
		FlowGroups:      1,
		PreRepl:         1,
		ProtoRepl:       1,
		PostRepl:        1,
		DMARepl:         1,
		CtxRepl:         1,
		ThreadsPerFPC:   1,
		MSS:             1448,
		AckEvery:        1,
		UseTimestamps:   true,
		SegPoolSize:     512,
		DescPoolSize:    256,
		SchedSlot:       2 * sim.Microsecond,
		SchedSlots:      4096,
		SoftwareRings:   true,
		NetifStage:      true,
		CostScale:       0.45, // superscalar x86 retires several NFP-ISA ops per cycle
		CopyBytesPerSec: 11e9,
		FlatMemory:      true,
		FlatMemCycles:   40,
	}
	if replicated {
		c.PreRepl, c.PostRepl = 2, 2
	}
	return c
}

// BlueFieldConfig is the BlueField port (§E, Fig. 14): wimpy A72 cores,
// slow memcpy, software rings.
func BlueFieldConfig(replicated bool) Config {
	c := X86Config(replicated)
	c.NFP.FPCHz = 800e6
	c.NFP.MMIOLatency = 250 * sim.Nanosecond
	c.CostScale = 0.8 // modest dual-issue
	c.CopyBytesPerSec = 2.6e9
	c.FlatMemCycles = 60
	c.NFP.CLSCycles = 8
	return c
}

// Validate fills defaults and checks invariants.
func (c *Config) Validate() {
	if c.FlowGroups <= 0 {
		c.FlowGroups = 1
	}
	if c.ThreadsPerFPC <= 0 {
		c.ThreadsPerFPC = 1
	}
	if c.MSS == 0 {
		c.MSS = 1448
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 1
	}
	if c.OOOIntervals <= 0 {
		c.OOOIntervals = 1
	}
	if c.AdaptiveOOO && c.OOOStateBudget <= 0 {
		c.OOOStateBudget = 4096
	}
	if c.OOOIntervals > tcpseg.MaxOOOIntervals {
		c.OOOIntervals = tcpseg.MaxOOOIntervals
	}
	if c.CostScale == 0 {
		c.CostScale = 1.0
	}
	if c.SegPoolSize <= 0 {
		c.SegPoolSize = 512
	}
	if c.DescPoolSize <= 0 {
		c.DescPoolSize = 256
	}
	if c.SchedSlot <= 0 {
		c.SchedSlot = 2 * sim.Microsecond
	}
	if c.SchedSlots <= 0 {
		c.SchedSlots = 4096
	}
	for _, r := range []*int{&c.PreRepl, &c.ProtoRepl, &c.PostRepl, &c.DMARepl, &c.CtxRepl} {
		if *r <= 0 {
			*r = 1
		}
	}
}

package core

import (
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/trace"
)

// InjectHC is the host-control entry point (§3.1.1): libTOE (or the
// control plane) has appended a descriptor to a context queue and rings
// the NIC doorbell via MMIO. The context-queue stage polls the doorbell,
// allocates a descriptor buffer from the bounded pool (allocation failure
// flow-controls the host: processing retries), DMAs the descriptor in,
// and steers it into the pipeline.
func (t *TOE) InjectHC(d shm.Desc) {
	item := t.allocSeg()
	item.kind = segHC
	item.hc = d
	t.eng.AfterCall(t.cfg.NFP.MMIOLatency, hcDoorbell, item)
}

func hcDoorbell(a any) {
	item := a.(*segItem)
	t := item.toe
	t.trace.Hit(trace.TPCtxQDoorbell)
	conn := t.connOrNil(item.hc.Conn)
	if conn == nil {
		t.putSeg(item)
		return
	}
	if t.mono != nil {
		t.monoHC(conn, item.hc)
		t.putSeg(item)
		return
	}
	item.conn = item.hc.Conn
	item.fg = int(conn.fg)
	item.entered = t.eng.Now()
	t.hcFetch(item)
}

// hcFetch allocates the NIC-side descriptor buffer and fetches the
// descriptor across PCIe ("Fetch" in Fig. 4). The pipeline-entry ticket
// is taken only once the descriptor buffer is held: ticketing before the
// bounded allocation would let parked segments hoard the pool while the
// reorder buffer waits on a starved earlier ticket — deadlock.
func (t *TOE) hcFetch(item *segItem) {
	if !t.descPool.TryAlloc() {
		t.trace.Hit(trace.TPDescAllocFail)
		// Pool exhausted: retry later (§3.1.1 "processing stops and is
		// retried").
		t.eng.AfterCall(2*sim.Microsecond, hcRetry, item)
		return
	}
	item.ticket = t.islands[item.fg].entry.ticket()
	// Poll + fetch on a context-queue FPC, then DMA the descriptor.
	task := sim.TaskC(t.scale(t.costs.CtxQPoll))
	fpc := t.ctxSt.fpcs[int(item.conn)%len(t.ctxSt.fpcs)]
	fpc.SubmitCall(task, hcPolled, item)
}

func hcRetry(a any) {
	item := a.(*segItem)
	item.toe.hcFetch(item)
}

func hcPolled(a any) {
	item := a.(*segItem)
	item.toe.xferCall(shm.DescWireSize, hcFetched, item)
}

func hcFetched(a any) {
	item := a.(*segItem)
	item.toe.pre.push(item)
}

package core

import (
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/trace"
)

// InjectHC is the host-control entry point (§3.1.1): libTOE (or the
// control plane) has appended a descriptor to a context queue and rings
// the NIC doorbell via MMIO. The context-queue stage polls the doorbell,
// allocates a descriptor buffer from the bounded pool (allocation failure
// flow-controls the host: processing retries), DMAs the descriptor in,
// and steers it into the pipeline.
func (t *TOE) InjectHC(d shm.Desc) {
	t.eng.After(t.cfg.NFP.MMIOLatency, func() { t.hcArrive(d) })
}

func (t *TOE) hcArrive(d shm.Desc) {
	t.trace.Hit(trace.TPCtxQDoorbell)
	conn := t.connOrNil(d.Conn)
	if conn == nil {
		return
	}
	if t.mono != nil {
		t.monoHC(conn, d)
		return
	}
	item := &segItem{kind: segHC, conn: d.Conn, fg: conn.fg, hc: d, entered: t.eng.Now()}
	t.hcFetch(item)
}

// hcFetch allocates the NIC-side descriptor buffer and fetches the
// descriptor across PCIe ("Fetch" in Fig. 4). The pipeline-entry ticket
// is taken only once the descriptor buffer is held: ticketing before the
// bounded allocation would let parked segments hoard the pool while the
// reorder buffer waits on a starved earlier ticket — deadlock.
func (t *TOE) hcFetch(item *segItem) {
	if !t.descPool.TryAlloc() {
		t.trace.Hit(trace.TPDescAllocFail)
		// Pool exhausted: retry later (§3.1.1 "processing stops and is
		// retried").
		t.eng.After(2*sim.Microsecond, func() { t.hcFetch(item) })
		return
	}
	item.ticket = t.islands[item.fg].entry.ticket()
	// Poll + fetch on a context-queue FPC, then DMA the descriptor.
	task := sim.TaskC(t.scale(t.costs.CtxQPoll))
	fpc := t.ctxSt.fpcs[int(item.conn)%len(t.ctxSt.fpcs)]
	fpc.Submit(task, func() {
		t.xfer(shm.DescWireSize, func() {
			t.pre.push(item)
		})
	})
}

package core

import (
	"bytes"
	"testing"

	"flextoe/internal/ebpf"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/xdp"
)

// These tests exercise XDP programs inside the data-path pipeline (the
// §3.3 module API), complementing the VM-level tests in internal/ebpf.

func TestXDPDropBlackholesTraffic(t *testing.T) {
	p := defaultPair(t, 32768)
	dropAll := &xdp.Func{ProgName: "drop-all", Instr: 10, F: func(*xdp.Context) xdp.Verdict { return xdp.Drop }}
	p.toeB.AttachXDP(dropAll)
	p.eng.At(0, func() { p.a.send(testData(5000)) })
	p.eng.RunUntil(10 * sim.Millisecond)
	if len(p.b.got) != 0 {
		t.Fatalf("data delivered through a dropping program: %d bytes", len(p.b.got))
	}
	if p.toeB.XDPDrops == 0 {
		t.Fatal("no drops counted")
	}
	// Pools must not leak on the drop path.
	if p.toeB.segPool.InUse() != 0 {
		t.Fatalf("segPool leaked %d buffers", p.toeB.segPool.InUse())
	}
}

func TestXDPPassIsTransparent(t *testing.T) {
	p := defaultPair(t, 32768)
	p.toeB.AttachXDP(xdp.Null())
	data := testData(20000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(30 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer through null XDP incomplete: %d/%d", len(p.b.got), len(data))
	}
}

func TestXDPRedirectGoesToControlPlane(t *testing.T) {
	p := defaultPair(t, 32768)
	redirected := 0
	p.toeB.ControlRx = func(pkt *packet.Packet) { redirected++ }
	redirect := &xdp.Func{ProgName: "to-ctrl", Instr: 10, F: func(*xdp.Context) xdp.Verdict { return xdp.Redirect }}
	p.toeB.AttachXDP(redirect)
	p.eng.At(0, func() { p.a.send(testData(100)) })
	p.eng.RunUntil(5 * sim.Millisecond)
	if redirected == 0 || p.toeB.XDPRedirects == 0 {
		t.Fatalf("redirects: cb=%d counter=%d", redirected, p.toeB.XDPRedirects)
	}
}

func TestXDPDetach(t *testing.T) {
	p := defaultPair(t, 32768)
	drop := &xdp.Func{ProgName: "drop-all", Instr: 10, F: func(*xdp.Context) xdp.Verdict { return xdp.Drop }}
	p.toeB.AttachXDP(drop)
	if !p.toeB.DetachXDP("drop-all") {
		t.Fatal("detach failed")
	}
	if p.toeB.DetachXDP("drop-all") {
		t.Fatal("double detach succeeded")
	}
	data := testData(3000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(10 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatal("traffic still blocked after detach")
	}
}

func TestXDPMutationReachesProtocol(t *testing.T) {
	// A program that rewrites the TOS field: the mutated packet must be
	// re-decoded and processed (CE mark visible to the receiver's ECN
	// feedback).
	p := defaultPair(t, 32768)
	marker := &xdp.Func{ProgName: "ce-mark", Instr: 12, F: func(ctx *xdp.Context) xdp.Verdict {
		if len(ctx.Data) > 15 {
			ctx.Data[15] |= 0x03 // set CE in the TOS byte
		}
		return xdp.Pass
	}}
	p.toeB.AttachXDP(marker)
	data := testData(2000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(10 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatalf("transfer incomplete: %d/%d", len(p.b.got), len(data))
	}
	// Sender must have observed ECE-marked acks (CE echoed by B).
	if p.a.conn.Post.CntECNB == 0 {
		t.Fatal("CE mark introduced by XDP never echoed back to the sender")
	}
}

func TestEBPFProgramInPipeline(t *testing.T) {
	// Run a real eBPF bytecode program in the pipeline: drop every
	// segment whose destination port is 2000 (the test flow's port).
	p := defaultPair(t, 32768)
	vm := ebpf.NewVM()
	prog := ebpf.NewAsm().
		LoadMem(ebpf.R3, ebpf.R1, 36, ebpf.SizeH). // TCP dst port
		JmpImm(ebpf.JEq, ebpf.R3, 2000, "drop").
		MovImm(ebpf.R0, ebpf.XDPPass).
		Exit().
		Label("drop").
		MovImm(ebpf.R0, ebpf.XDPDrop).
		Exit().MustProgram()
	xp, err := ebpf.LoadXDP("port-filter", vm, prog)
	if err != nil {
		t.Fatal(err)
	}
	p.toeB.AttachXDP(xp)
	p.eng.At(0, func() { p.a.send(testData(1000)) })
	p.eng.RunUntil(5 * sim.Millisecond)
	if len(p.b.got) != 0 {
		t.Fatal("eBPF port filter did not drop the flow")
	}
	if p.toeB.XDPDrops == 0 {
		t.Fatal("no drops counted")
	}
}

func TestXDPChainShortCircuits(t *testing.T) {
	// First program drops; second must never run.
	p := defaultPair(t, 32768)
	secondRan := false
	p.toeB.AttachXDP(&xdp.Func{ProgName: "first", Instr: 5, F: func(*xdp.Context) xdp.Verdict { return xdp.Drop }})
	p.toeB.AttachXDP(&xdp.Func{ProgName: "second", Instr: 5, F: func(*xdp.Context) xdp.Verdict {
		secondRan = true
		return xdp.Pass
	}})
	p.eng.At(0, func() { p.a.send(testData(100)) })
	p.eng.RunUntil(3 * sim.Millisecond)
	if secondRan {
		t.Fatal("chain did not short-circuit after Drop")
	}
}

func TestPacketTapSeesBothDirections(t *testing.T) {
	p := defaultPair(t, 32768)
	var rx, tx int
	p.toeB.PacketTapCost = 100
	p.toeB.PacketTap = func(dir string, pkt *packet.Packet) {
		switch dir {
		case "rx":
			rx++
		case "tx":
			tx++
		}
	}
	data := testData(10000)
	p.eng.At(0, func() { p.a.send(data) })
	p.eng.RunUntil(20 * sim.Millisecond)
	if !bytes.Equal(p.b.got, data) {
		t.Fatal("transfer incomplete")
	}
	if rx == 0 || tx == 0 {
		t.Fatalf("tap: rx=%d tx=%d", rx, tx)
	}
}

func TestFirewallModuleInPipeline(t *testing.T) {
	// The §2.1 firewall feature end-to-end: block the peer, traffic
	// stops; unblock, traffic resumes.
	p := defaultPair(t, 32768)
	fw := xdp.NewFirewall()
	fw.Block(uint32(packet.IP(10, 0, 0, 1))) // A's address
	p.toeB.AttachXDP(fw)
	p.eng.At(0, func() { p.a.send(testData(1000)) })
	p.eng.RunUntil(5 * sim.Millisecond)
	if len(p.b.got) != 0 {
		t.Fatal("blocked source delivered data")
	}
	fw.Unblock(uint32(packet.IP(10, 0, 0, 1)))
	// Trigger recovery via a control-plane style retransmit.
	p.eng.Immediately(func() {
		p.toeA.InjectHC(shm.Desc{Kind: shm.DescRetransmit, Conn: p.a.conn.ID})
	})
	p.eng.RunUntil(30 * sim.Millisecond)
	if len(p.b.got) != 1000 {
		t.Fatalf("traffic did not resume after unblock: %d/1000", len(p.b.got))
	}
}

func TestVLANStripInPipeline(t *testing.T) {
	// Inject a VLAN-tagged frame directly at B's NIC; the strip module
	// removes the tag and the segment reaches the connection.
	p := defaultPair(t, 32768)
	p.toeB.AttachXDP(xdp.VLANStrip())
	pkt := &packet.Packet{
		Eth:  packet.Ethernet{Src: packet.MAC(2, 0, 0, 0, 0, 1), Dst: packet.MAC(2, 0, 0, 0, 0, 2)},
		VLAN: &packet.VLAN{ID: 100, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(10, 0, 0, 2)},
		TCP: packet.TCP{SrcPort: 1000, DstPort: 2000, Seq: 0, Ack: 0,
			Flags: packet.FlagACK | packet.FlagPSH, Window: 512, WScale: -1},
		Payload: []byte("tagged payload"),
	}
	p.eng.At(sim.Microsecond, func() {
		p.toeB.rxFromWire(netsim.NewFrame(pkt, p.eng.Now()))
	})
	p.eng.RunUntil(5 * sim.Millisecond)
	if string(p.b.got) != "tagged payload" {
		t.Fatalf("got %q", p.b.got)
	}
}

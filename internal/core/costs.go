package core

// Costs holds per-operation instruction budgets for every pipeline module,
// in NFP-ISA instructions (1 instruction/cycle on an FPC issue slot). The
// defaults are calibrated so the simulated Agilio-CX40 reproduces the
// paper's headline operating points: the protocol stage bottleneck around
// 11 MOps for 64 B RPCs across four flow groups (Table 2), the Table 3
// ablation ratios, and the Fig. 11 latency floor (~20 us median RTT with
// pipelining overhead).
//
// Memory-stall costs are not listed here: they come from the cache
// hierarchy model (internal/nfp) and the DMA engine, which is the point —
// the paper's design extracts performance precisely by overlapping those
// stalls.
type Costs struct {
	// Pre-processing (Fig. 6: Val, Id, Sum, Steer; Fig. 5: Alloc, Head).
	PreValidate int64
	PreLookup   int64 // plus IMEM stall on lookup-cache miss
	PreSummary  int64
	PreSteer    int64
	PreAlloc    int64 // TX segment buffer allocation
	PreHeader   int64 // Ethernet/IP header preparation

	// Protocol stage (the atomic pipeline hazard).
	ProtoRX int64 // Win: window advance, OOO merge, dupack tracking
	ProtoTX int64 // Seq: sequence assignment, buffer position
	ProtoHC int64 // Win/Fin/Reset on host control

	// Post-processing.
	PostAck    int64 // ACK segment preparation
	PostStamp  int64 // ECN feedback + timestamp (optional modules, §3.3)
	PostStats  int64 // congestion statistics, FS update
	PostPos    int64 // host buffer address computation
	PostNotify int64 // context-queue descriptor preparation

	// DMA manager and context-queue stages.
	DMAIssue   int64 // descriptor construction + doorbell to PCIe block
	CtxQPoll   int64 // doorbell poll + descriptor fetch setup
	CtxQNotify int64 // notification enqueue + MSI-X decision

	// Sequencing/reordering FPCs (§3.2).
	SeqTicket  int64
	SeqReorder int64

	// Software-ring overhead per hop on the x86/BlueField ports (§E).
	RingOp int64
	// netif stage per packet (DPDK RX/TX burst amortized).
	Netif int64

	// XDP hook overhead (context setup + verdict dispatch), excluding
	// the program's own instructions.
	XDPHook int64

	// Run-to-completion penalty factor (Table 3 baseline): the monolithic
	// data-path exceeds the 32 KB FPC codestore, so every segment pays
	// instruction-fetch stalls modeled as extra cycles per instruction.
	MonolithicFetchPenalty float64
}

// DefaultCosts returns the calibrated instruction budgets.
func DefaultCosts() Costs {
	return Costs{
		PreValidate: 60,
		PreLookup:   95, // CRC-32 over the 4-tuple + CAM lookup issue
		PreSummary:  70,
		PreSteer:    25,
		PreAlloc:    30,
		PreHeader:   55,

		ProtoRX: 170,
		ProtoTX: 110,
		ProtoHC: 55,

		PostAck:    42,
		PostStamp:  18,
		PostStats:  22,
		PostPos:    16,
		PostNotify: 24,

		DMAIssue:   46,
		CtxQPoll:   36,
		CtxQNotify: 30,

		SeqTicket:  10,
		SeqReorder: 16,

		RingOp: 40,
		Netif:  70,

		XDPHook: 22,

		MonolithicFetchPenalty: 6.0,
	}
}

// scale applies the platform's CostScale to an instruction budget.
func (t *TOE) scale(instr int64) int64 {
	if t.cfg.CostScale == 1.0 {
		return instr
	}
	v := int64(float64(instr) * t.cfg.CostScale)
	if v < 1 && instr > 0 {
		v = 1
	}
	return v
}

package core

import (
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
	"flextoe/internal/trace"
)

// txWindowLimit bounds TX segments in flight through the pipeline, so the
// scheduler cannot flood a single stage (the segment pool provides the
// hard bound; this keeps latency low).
const txWindowLimit = 64

// submitFlow tells the flow scheduler the connection has data and quota
// (the post-processor's FS update, Fig. 4/6).
func (t *TOE) submitFlow(c *Conn) {
	t.trace.Hit(trace.TPSchedSubmit)
	t.sched.Submit(c.ID)
	t.kickTX()
}

// kickConn is the control plane's poke after reprogramming windows.
func (t *TOE) kickConn(c *Conn) {
	if tcpseg.SendableBytes(&c.Proto, c.CWnd) > 0 {
		t.submitFlow(c)
	}
}

// kickTX arms the transmit pump (idempotent within an instant).
func (t *TOE) kickTX() {
	if t.txPumpArmed {
		return
	}
	t.txPumpArmed = true
	t.eng.Immediately(t.txPumpFn)
}

// txPump drains the flow scheduler while pipeline credits remain,
// injecting one segment per scheduler decision (§3.1.2). When the
// scheduler only has future (rate-limited) work, the pump re-arms at the
// wheel's next deadline.
func (t *TOE) txPump() {
	t.txPumpArmed = false
	if t.mono != nil {
		t.monoTXPump()
		return
	}
	for t.txInflight < txWindowLimit {
		id, ok := t.sched.Next(t.cfg.MSS)
		if !ok {
			break
		}
		t.trace.Hit(trace.TPSchedPop)
		conn := t.connOrNil(id)
		if conn == nil {
			continue
		}
		sendable := tcpseg.SendableBytes(&conn.Proto, conn.CWnd)
		if sendable == 0 && conn.Proto.FinSent() {
			continue
		}
		if sendable == 0 && !finPending(conn) {
			continue // stale scheduler entry
		}
		if !t.segPool.TryAlloc() {
			t.trace.Hit(trace.TPSegAllocFail)
			// Out of segment buffers: retry when one frees (nbiOut kicks).
			t.sched.Submit(id)
			break
		}
		t.txInflight++
		item := t.allocSeg()
		item.kind = segTX
		item.conn = id
		item.fg = int(conn.fg)
		item.entered = t.eng.Now()
		item.ticket = t.islands[int(conn.fg)].entry.ticket()
		t.pre.push(item)
		// If the flow can send more than one MSS, keep it scheduled.
		if sendable > t.cfg.MSS {
			t.sched.Submit(id)
		}
	}
	if dl, ok := t.sched.NextDeadline(); ok && dl > t.eng.Now() {
		t.eng.At(dl, t.kickTXFn)
	}
}

func finPending(c *Conn) bool {
	// A FIN wanting transmission keeps the flow eligible even with an
	// empty buffer.
	return !c.Proto.FinSent() && c.Proto.TxAvail == 0 && pendingFinFlag(c)
}

func pendingFinFlag(c *Conn) bool {
	// tcpseg keeps the flag private; SendableBytes==0 with a pending FIN
	// still yields a segment from ProcessTX, so probing is safe.
	st := c.Proto
	_, ok := tcpseg.ProcessTX(&st, &c.Post, 1, 0)
	return ok && st.FinSent()
}

// sendDeadline helper for tests.
func (t *TOE) schedDeadline() (sim.Time, bool) { return t.sched.NextDeadline() }

package core

import (
	"runtime"
	"testing"

	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// allocTOE builds a standalone TOE for table-level tests (no peer, no
// traffic).
func allocTOE() *TOE {
	eng := sim.New()
	n := netsim.NewNetwork(eng, netsim.SwitchConfig{})
	iface := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), netsim.GbpsToBytesPerSec(40), 0)
	return New(eng, AgilioCX40Config(), iface)
}

func flowN(i int) packet.Flow {
	return packet.Flow{
		SrcIP:   packet.IP(10, 0, 0, 1),
		DstIP:   packet.IP(172, byte(16+(i>>16)), byte(i>>8), byte(i)),
		SrcPort: 1000,
		DstPort: 2000,
	}
}

// TestConnTableAllocBudget is the CI allocation gate for the slab
// connection table (doc.go "Connection state budget"):
//
//   - flow lookup: 0 allocations — it is on the per-segment fast path;
//   - warm establish/teardown: 0 allocations — churn reuses freed slots,
//     index tombstone-free via backward-shift deletion;
//   - cold establish: amortized well below one allocation per connection
//     (block-granular slab growth plus doubling index/free-ring growth).
func TestConnTableAllocBudget(t *testing.T) {
	toe := allocTOE()
	tx := shm.NewPayloadBuf(4096)
	rx := shm.NewPayloadBuf(4096)

	// Cold establish: count mallocs across 10k fresh installs.
	const n = 10_000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		toe.AddConnection(flowN(i), packet.EtherAddr{}, uint32(i), 0, tx, rx, 0, nil)
	}
	runtime.ReadMemStats(&after)
	if mallocs := after.Mallocs - before.Mallocs; mallocs > n/50 {
		t.Errorf("cold establish: %d mallocs for %d connections (%.3f/conn), want amortized < 0.02",
			mallocs, n, float64(mallocs)/n)
	}

	// Lookup: strictly zero allocations per segment.
	f := flowN(n / 2)
	if avg := testing.AllocsPerRun(1000, func() {
		if toe.lookupFlow(f) == nil {
			t.Fatal("lookup missed an installed flow")
		}
	}); avg != 0 {
		t.Errorf("lookup allocates %.2f/op, want 0", avg)
	}

	// Warm churn: teardown + establish must reuse the freed slot and the
	// index's existing buckets.
	i := n
	if avg := testing.AllocsPerRun(1000, func() {
		c := toe.AddConnection(flowN(i), packet.EtherAddr{}, 1, 0, tx, rx, 0, nil)
		toe.RemoveConnection(c.ID)
		i++
	}); avg != 0 {
		t.Errorf("warm establish/teardown allocates %.2f/op, want 0", avg)
	}

	if got := toe.NumConnections(); got != n {
		t.Fatalf("expected %d live connections after churn, got %d", n, got)
	}
}

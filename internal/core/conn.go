package core

import (
	"unsafe"

	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// Connection slots live in fixed 256-entry value blocks: pointers into a
// block stay valid forever (blocks are never reallocated), slot id →
// (block, offset) is two shifts, and the per-connection footprint is the
// struct itself — no per-conn heap object, no map entry (doc.go
// "Connection state budget").
const (
	connBlockShift = 8
	connBlockLen   = 1 << connBlockShift
	connBlockMask  = connBlockLen - 1
)

// Conn is one established connection offloaded to the data-path. The
// control plane creates it (after completing the handshake) and tears it
// down; pipeline stages touch only their own state partition. Conns are
// slab slots, reset in place on reuse.
type Conn struct {
	ID   uint32
	Flow packet.Flow // from the local endpoint's perspective (src = local)

	Pre   tcpseg.PreState
	Proto tcpseg.ProtoState
	Post  tcpseg.PostState

	// Host-memory payload buffers (PAYLOAD-BUFs, Fig. 2).
	TxBuf *shm.PayloadBuf
	RxBuf *shm.PayloadBuf

	// Congestion control programming (MMIO from the control plane).
	CWnd uint32 // congestion window in bytes; 0 = unlimited

	// Notify delivers NIC->host context-queue descriptors to libTOE.
	Notify func(shm.Desc)

	fg        uint8
	ackSkip   int16 // delayed-ACK counter (AckEvery extension)
	live      bool
	timerHint bool // control plane has a timer armed for this conn
}

// ConnStats is the control plane's periodic congestion-control poll
// (§D): counters accumulate in post-processor state and are cleared on
// read.
type ConnStats struct {
	AckedBytes uint32
	ECNBytes   uint32
	FastRetx   uint8
	RTTMicros  uint32
	TxPending  uint32 // bytes buffered or in flight (for RTO decisions)
	TxSent     uint32 // in-flight bytes
}

// connAt returns the slot without a liveness check (slab addressing; the
// caller guarantees the slot was installed).
func (t *TOE) connAt(id uint32) *Conn {
	return &t.connBlks[id>>connBlockShift][id&connBlockMask]
}

// AddConnection installs an established connection in the data-path. The
// flow must be unique. Buffers must be power-of-two sized. Slots of
// removed connections are reused FIFO (oldest-freed first), so a
// just-torn-down id stays quarantined while any straggling in-flight
// work drains.
func (t *TOE) AddConnection(flow packet.Flow, peerMAC packet.EtherAddr, iss, irs uint32,
	txBuf, rxBuf *shm.PayloadBuf, opaque uint64, notify func(shm.Desc)) *Conn {

	var id uint32
	if t.connFreeHead < len(t.connFree) {
		id = t.connFree[t.connFreeHead]
		t.connFree, t.connFreeHead = shm.PopRing(t.connFree, t.connFreeHead)
	} else {
		id = t.connTop
		t.connTop++
		if int(id>>connBlockShift) == len(t.connBlks) {
			t.connBlks = append(t.connBlks, make([]Conn, connBlockLen))
		}
	}
	fg := flow.FlowGroup(t.cfg.FlowGroups)
	c := t.connAt(id)
	// Full in-place reset: no state survives slot reuse.
	*c = Conn{
		ID:   id,
		Flow: flow,
		Pre: tcpseg.PreState{
			PeerMAC:    peerMAC,
			PeerIP:     flow.DstIP,
			LocalIP:    flow.SrcIP,
			LocalPort:  flow.SrcPort,
			RemotePort: flow.DstPort,
			FlowGroup:  uint8(fg),
		},
		Proto: tcpseg.ProtoState{
			Seq:     iss,
			TxMax:   iss,
			Ack:     irs,
			RxAvail: rxBuf.Size(),
			OOOCap:  uint8(t.cfg.OOOIntervals),
		},
		Post: tcpseg.PostState{
			Opaque: opaque,
			RxSize: rxBuf.Size(),
			TxSize: txBuf.Size(),
		},
		TxBuf:  txBuf,
		RxBuf:  rxBuf,
		Notify: notify,
		fg:     uint8(fg),
		live:   true,
	}
	if cap := t.dynOOOCap; cap != 0 {
		c.Proto.OOOCap = cap
	}
	// Peers start with a sane default window until the first segment
	// arrives (the handshake's window, here one full buffer).
	c.Proto.RemoteWin = uint16(rxBuf.Size() >> tcpseg.WindowScale)
	if c.Proto.RemoteWin == 0 {
		c.Proto.RemoteWin = 1
	}
	t.flowIdx.Insert(flow, id)
	t.nLive++
	t.trace.Hit(traceEstablished)
	return c
}

// RemoveConnection tears a connection down and frees its data-path state
// for reuse. The control plane only calls this after the connection has
// been quiescent for a linger period, so no in-flight pipeline work still
// references the slot.
func (t *TOE) RemoveConnection(id uint32) {
	c := t.connOrNil(id)
	if c == nil {
		return
	}
	t.flowIdx.Delete(c.Flow)
	c.live = false
	// Drop the host-side references now so churned connections' payload
	// buffers and sockets are collectable before the slot is reused.
	c.TxBuf = nil
	c.RxBuf = nil
	c.Notify = nil
	t.sched.Remove(id)
	t.connFree = append(t.connFree, id)
	t.nLive--
	t.trace.Hit(traceClosed)
}

// lookupFlow resolves a flow to its live connection: the pre-processor's
// CRC-32 flow-table access (§4.1). 0 allocations.
func (t *TOE) lookupFlow(f packet.Flow) *Conn {
	id, ok := t.flowIdx.Lookup(f)
	if !ok {
		return nil
	}
	return t.connAt(id)
}

// Connection returns a connection by slot id (nil if out of range or
// closed).
func (t *TOE) Connection(id uint32) *Conn { return t.connOrNil(id) }

func (t *TOE) connOrNil(id uint32) *Conn {
	if int(id>>connBlockShift) >= len(t.connBlks) {
		return nil
	}
	c := t.connAt(id)
	if !c.live {
		return nil
	}
	return c
}

// NumConnections returns the number of live connections.
func (t *TOE) NumConnections() int { return t.nLive }

// ConnStateBytes reports the NIC-side connection-state footprint: slot
// blocks, the flow-hash index, and the free-slot ring. Host payload
// buffers are deliberately excluded — Table 5 budgets NIC connection
// state, and host buffers are an application sizing choice (doc.go
// "Connection state budget").
func (t *TOE) ConnStateBytes() int {
	return len(t.connBlks)*connBlockLen*int(unsafe.Sizeof(Conn{})) +
		t.flowIdx.MemBytes() + cap(t.connFree)*4
}

// SetDynOOOCap programs the fleet-wide reassembly interval budget
// (adaptive OOOCap, control-plane MMIO): new connections start at cap,
// existing ones adopt it lazily on their next RX (0 = static config).
func (t *TOE) SetDynOOOCap(cap uint8) {
	if cap > tcpseg.MaxOOOIntervals {
		cap = tcpseg.MaxOOOIntervals
	}
	t.dynOOOCap = cap
}

// ClearTimerHint re-enables the data-path timer kick for a connection
// (the control plane disarmed its last timer).
func (t *TOE) ClearTimerHint(id uint32) {
	if c := t.connOrNil(id); c != nil {
		c.timerHint = false
	}
}

// maybeTimerKick tells the control plane a connection may need timer
// service (bytes in flight, FIN pending, or a zero window blocking
// staged data). Called from the protocol stage after state mutation;
// timerHint dedupes so an armed connection never re-notifies — timer
// cost scales with activations, not with segments or total connections.
func (t *TOE) maybeTimerKick(c *Conn) {
	if c.timerHint || t.TimerKick == nil {
		return
	}
	p := &c.Proto
	if p.TxSent > 0 ||
		(p.FinSent() && !p.FinAcked()) ||
		(p.TxAvail > 0 && p.RemoteWin == 0) ||
		(p.FinSent() && p.FinAcked() && p.FinRx()) {
		c.timerHint = true
		t.TimerKick(c.ID)
	}
}

// SetCongestionWindow programs a connection's window (control-plane MMIO,
// §3.4).
func (t *TOE) SetCongestionWindow(id uint32, bytes uint32) {
	if c := t.connOrNil(id); c != nil {
		c.CWnd = bytes
		t.kickConn(c) // window growth may unblock transmission
	}
}

// SetRateInterval programs a connection's pacing interval in time per
// byte. The control plane pre-computes it from the rate, because FPCs
// cannot divide (§3.4).
func (t *TOE) SetRateInterval(id uint32, perByte sim.Time) {
	t.sched.SetInterval(id, perByte)
}

// ReadStats returns and clears the connection's congestion-control
// counters (the control plane's per-RTT poll, §D).
func (t *TOE) ReadStats(id uint32) ConnStats {
	c := t.connOrNil(id)
	if c == nil {
		return ConnStats{}
	}
	s := ConnStats{
		AckedBytes: c.Post.CntACKB,
		ECNBytes:   c.Post.CntECNB,
		FastRetx:   c.Post.CntFRetx,
		RTTMicros:  c.Post.RTTEst,
		TxPending:  c.Proto.TxAvail + c.Proto.TxSent,
		TxSent:     c.Proto.TxSent,
	}
	c.Post.CntACKB = 0
	c.Post.CntECNB = 0
	c.Post.CntFRetx = 0
	return s
}

package core

import (
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// Conn is one established connection offloaded to the data-path. The
// control plane creates it (after completing the handshake) and tears it
// down; pipeline stages touch only their own state partition.
type Conn struct {
	ID   uint32
	Flow packet.Flow // from the local endpoint's perspective (src = local)

	Pre   tcpseg.PreState
	Proto tcpseg.ProtoState
	Post  tcpseg.PostState

	// Host-memory payload buffers (PAYLOAD-BUFs, Fig. 2).
	TxBuf *shm.PayloadBuf
	RxBuf *shm.PayloadBuf

	// Congestion control programming (MMIO from the control plane).
	CWnd uint32 // congestion window in bytes; 0 = unlimited

	// Notify delivers NIC->host context-queue descriptors to libTOE.
	Notify func(shm.Desc)

	fg           int
	ackSkip      int // delayed-ACK counter (AckEvery extension)
	closed       bool
	lastActivity sim.Time
}

// ConnStats is the control plane's periodic congestion-control poll
// (§D): counters accumulate in post-processor state and are cleared on
// read.
type ConnStats struct {
	AckedBytes uint32
	ECNBytes   uint32
	FastRetx   uint8
	RTTMicros  uint32
	TxPending  uint32 // bytes buffered or in flight (for RTO decisions)
	TxSent     uint32 // in-flight bytes
}

// AddConnection installs an established connection in the data-path. The
// flow must be unique. Buffers must be power-of-two sized.
func (t *TOE) AddConnection(flow packet.Flow, peerMAC packet.EtherAddr, iss, irs uint32,
	txBuf, rxBuf *shm.PayloadBuf, opaque uint64, notify func(shm.Desc)) *Conn {

	id := uint32(len(t.conns))
	fg := flow.FlowGroup(t.cfg.FlowGroups)
	c := &Conn{
		ID:   id,
		Flow: flow,
		Pre: tcpseg.PreState{
			PeerMAC:    peerMAC,
			PeerIP:     flow.DstIP,
			LocalIP:    flow.SrcIP,
			LocalPort:  flow.SrcPort,
			RemotePort: flow.DstPort,
			FlowGroup:  uint8(fg),
		},
		Proto: tcpseg.ProtoState{
			Seq:     iss,
			TxMax:   iss,
			Ack:     irs,
			RxAvail: rxBuf.Size(),
			OOOCap:  uint8(t.cfg.OOOIntervals),
		},
		Post: tcpseg.PostState{
			Opaque: opaque,
			RxSize: rxBuf.Size(),
			TxSize: txBuf.Size(),
		},
		TxBuf:  txBuf,
		RxBuf:  rxBuf,
		Notify: notify,
		fg:     fg,
	}
	// Peers start with a sane default window until the first segment
	// arrives (the handshake's window, here one full buffer).
	c.Proto.RemoteWin = uint16(rxBuf.Size() >> tcpseg.WindowScale)
	if c.Proto.RemoteWin == 0 {
		c.Proto.RemoteWin = 1
	}
	t.conns = append(t.conns, c)
	t.connByFlow[flow] = c
	t.trace.Hit(traceEstablished)
	return c
}

// RemoveConnection tears a connection down and frees its data-path state.
func (t *TOE) RemoveConnection(id uint32) {
	c := t.connOrNil(id)
	if c == nil || c.closed {
		return
	}
	c.closed = true
	delete(t.connByFlow, c.Flow)
	t.sched.Remove(id)
	t.trace.Hit(traceClosed)
}

// Connection returns a connection by index (nil if out of range or
// closed).
func (t *TOE) Connection(id uint32) *Conn { return t.connOrNil(id) }

func (t *TOE) connOrNil(id uint32) *Conn {
	if int(id) >= len(t.conns) {
		return nil
	}
	c := t.conns[id]
	if c == nil || c.closed {
		return nil
	}
	return c
}

// NumConnections returns the number of installed (possibly closed)
// connection slots.
func (t *TOE) NumConnections() int { return len(t.conns) }

// SetCongestionWindow programs a connection's window (control-plane MMIO,
// §3.4).
func (t *TOE) SetCongestionWindow(id uint32, bytes uint32) {
	if c := t.connOrNil(id); c != nil {
		c.CWnd = bytes
		t.kickConn(c) // window growth may unblock transmission
	}
}

// SetRateInterval programs a connection's pacing interval in time per
// byte. The control plane pre-computes it from the rate, because FPCs
// cannot divide (§3.4).
func (t *TOE) SetRateInterval(id uint32, perByte sim.Time) {
	t.sched.SetInterval(id, perByte)
}

// ReadStats returns and clears the connection's congestion-control
// counters (the control plane's per-RTT poll, §D).
func (t *TOE) ReadStats(id uint32) ConnStats {
	c := t.connOrNil(id)
	if c == nil {
		return ConnStats{}
	}
	s := ConnStats{
		AckedBytes: c.Post.CntACKB,
		ECNBytes:   c.Post.CntECNB,
		FastRetx:   c.Post.CntFRetx,
		RTTMicros:  c.Post.RTTEst,
		TxPending:  c.Proto.TxAvail + c.Proto.TxSent,
		TxSent:     c.Proto.TxSent,
	}
	c.Post.CntACKB = 0
	c.Post.CntECNB = 0
	c.Post.CntFRetx = 0
	return s
}

package core

import (
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// Run-to-completion mode: the Table 3 ablation baseline. The entire TCP
// data-path executes on a single FPC before the next segment is touched —
// no pipelining, no stall overlap, no caching discipline, and a monolithic
// code footprint that blows the 32 KB FPC codestore (modeled as an
// instruction-fetch penalty on every instruction).

func (t *TOE) monoInstr(base int64) int64 {
	return int64(float64(base) * t.costs.MonolithicFetchPenalty)
}

// monoWork carries one run-to-completion task from Submit to its handler
// without a closure per segment. Pooled: each handler consumes and
// recycles the carrier before running the protocol logic.
type monoWork struct {
	t    *TOE
	conn uint32
	pkt  *packet.Packet
	d    shm.Desc
}

func (t *TOE) getMonoWork() *monoWork {
	if w := t.monoFree.Get(); w != nil {
		return w
	}
	return &monoWork{}
}

func (t *TOE) putMonoWork(w *monoWork) {
	*w = monoWork{}
	t.monoFree.Put(w)
}

func (t *TOE) monoRX(pkt *packet.Packet) {
	if !pkt.TCP.IsDataPath() {
		t.toControl(pkt)
		return
	}
	conn := t.lookupFlow(pkt.Flow().Reverse())
	if conn == nil {
		t.toControl(pkt)
		return
	}
	c := &t.costs
	n := &t.cfg.NFP
	instr := t.monoInstr(c.PreValidate + c.PreLookup + c.PreSummary + c.ProtoRX +
		c.PostAck + c.PostStamp + c.PostStats + c.PostPos + c.PostNotify +
		c.DMAIssue + c.CtxQNotify)
	payloadDMA := t.blockingXferTime(len(pkt.Payload))
	descDMA := t.blockingXferTime(shm.DescWireSize)
	task := sim.TaskC(instr/3).
		Add(0, n.CyclesTime(n.IMEMCycles+1500)).    // uncached lookup + codestore refill from IMEM
		Add(instr/3, n.CyclesTime(2*n.DRAMCycles)). // uncached state fetch + writeback
		Add(instr/3, payloadDMA).                   // blocking payload DMA
		Add(0, descDMA)                             // blocking notification
	w := t.getMonoWork()
	w.t, w.conn, w.pkt = t, conn.ID, pkt
	t.mono.SubmitCall(task, monoRXDone, w)
}

func monoRXDone(a any) {
	w := a.(*monoWork)
	t, pkt := w.t, w.pkt
	conn2 := t.connOrNil(w.conn)
	t.putMonoWork(w)
	if conn2 == nil {
		packet.Release(pkt)
		return
	}
	info := tcpseg.Summarize(pkt)
	if cap := t.dynOOOCap; cap != 0 && conn2.Proto.OOOCap != cap {
		conn2.Proto.OOOCap = cap
	}
	res := tcpseg.ProcessRX(&conn2.Proto, &conn2.Post, &info, t.tsNow())
	if res.WriteLen > 0 {
		conn2.RxBuf.WriteAt(res.WritePos, pkt.Payload[res.WriteOff:res.WriteOff+res.WriteLen])
	}
	packet.Release(pkt) // the run-to-completion path consumes it here
	t.RxSegs++
	t.RxBytes += uint64(info.PayloadLen)
	if res.SACKReneged {
		t.SACKReneges++
	}
	if res.FastRetransmit {
		t.FastRetx++
		if res.SACKRetransmit {
			t.SACKRetx++
		}
	}
	t.countReassembly(&res)
	t.maybeTimerKick(conn2)
	if res.SendAck {
		s := &segItem{kind: segRX, conn: conn2.ID, rx: res}
		t.AcksSent++
		t.sendFrame(t.buildAck(conn2, s))
	}
	s := &segItem{rx: res}
	t.monoNotify(conn2, s)
	if tcpseg.SendableBytes(&conn2.Proto, conn2.CWnd) > 0 {
		t.submitFlow(conn2)
	}
}

func (t *TOE) monoNotify(conn *Conn, s *segItem) {
	if conn.Notify == nil {
		return
	}
	if s.rx.NewInOrder > 0 {
		conn.Notify(shm.Desc{Kind: shm.DescRxNotify, Conn: conn.ID, Bytes: s.rx.NewInOrder, Opaque: conn.Post.Opaque})
		t.Notifies++
	}
	if s.rx.AckedBytes > 0 {
		conn.Notify(shm.Desc{Kind: shm.DescTxFree, Conn: conn.ID, Bytes: s.rx.AckedBytes, Opaque: conn.Post.Opaque})
	}
	if s.rx.FinRx {
		conn.Notify(shm.Desc{Kind: shm.DescFinRx, Conn: conn.ID, Opaque: conn.Post.Opaque})
	}
}

// blockingXferTime is a host transfer with the FPC stalled on it.
func (t *TOE) blockingXferTime(bytes int) sim.Time {
	if bytes <= 0 {
		return 0
	}
	rate := t.cfg.NFP.PCIeBytesPerSec
	if t.cfg.CopyBytesPerSec > 0 {
		rate = t.cfg.CopyBytesPerSec
	}
	return sim.Time(float64(bytes)/rate*1e12) + t.cfg.NFP.PCIeLatency
}

func (t *TOE) monoHC(conn *Conn, d shm.Desc) {
	c := &t.costs
	n := &t.cfg.NFP
	instr := t.monoInstr(c.CtxQPoll + c.ProtoHC + c.PostStats)
	task := sim.TaskC(instr).
		Add(0, t.blockingXferTime(shm.DescWireSize)).
		Add(0, n.CyclesTime(n.DRAMCycles))
	w := t.getMonoWork()
	w.t, w.conn, w.d = t, conn.ID, d
	t.mono.SubmitCall(task, monoHCDone, w)
}

func monoHCDone(a any) {
	w := a.(*monoWork)
	t, d := w.t, w.d
	conn2 := t.connOrNil(w.conn)
	t.putMonoWork(w)
	if conn2 == nil {
		return
	}
	res := tcpseg.ProcessHC(&conn2.Proto, &conn2.Post, hcOpOf(d))
	t.HCOps++
	t.maybeTimerKick(conn2)
	if res.SendWindowUpdate {
		// Re-advertise the reopened window (same zero-window
		// deadlock repair as the pipeline's HC path).
		s := &segItem{kind: segHC, conn: conn2.ID, rx: tcpseg.WindowUpdateAck(&conn2.Proto)}
		t.AcksSent++
		t.sendFrame(t.buildAck(conn2, s))
	}
	if tcpseg.SendableBytes(&conn2.Proto, conn2.CWnd) > 0 || conn2.Proto.TxAvail > 0 {
		t.submitFlow(conn2)
	}
}

func (t *TOE) monoTXPump() {
	// One segment at a time: pop, process to completion, transmit, loop.
	if t.mono.FreeThreads() == 0 {
		t.mono.Idle = func() { t.mono.Idle = nil; t.kickTX() }
		return
	}
	id, ok := t.sched.Next(t.cfg.MSS)
	if !ok {
		if dl, ok := t.sched.NextDeadline(); ok && dl > t.eng.Now() {
			t.eng.At(dl, t.kickTX)
		}
		return
	}
	conn := t.connOrNil(id)
	if conn == nil {
		t.kickTX()
		return
	}
	c := &t.costs
	n := &t.cfg.NFP
	instr := t.monoInstr(c.PreAlloc + c.PreHeader + c.ProtoTX + c.PostPos + c.PostStats + c.DMAIssue)
	sendable := tcpseg.SendableBytes(&conn.Proto, conn.CWnd)
	if sendable > t.cfg.MSS {
		sendable = t.cfg.MSS
	}
	task := sim.TaskC(instr/2).
		Add(0, n.CyclesTime(2*n.DRAMCycles)).
		Add(instr/2, t.blockingXferTime(int(sendable)))
	w := t.getMonoWork()
	w.t, w.conn = t, id
	t.mono.SubmitCall(task, monoTXDone, w)
}

func monoTXDone(a any) {
	w := a.(*monoWork)
	t, id := w.t, w.conn
	conn2 := t.connOrNil(id)
	t.putMonoWork(w)
	if conn2 == nil {
		t.kickTX()
		return
	}
	txr, ok := tcpseg.ProcessTX(&conn2.Proto, &conn2.Post, t.cfg.MSS, conn2.CWnd)
	t.maybeTimerKick(conn2)
	if ok {
		s := &segItem{kind: segTX, conn: id, tx: txr}
		t.TxSegs++
		t.TxBytes += uint64(txr.Len)
		if txr.RetxBytes > 0 {
			t.RetxSegs++
			t.RetxBytes += uint64(txr.RetxBytes)
		}
		t.sendFrame(t.buildData(conn2, s))
		if tcpseg.SendableBytes(&conn2.Proto, conn2.CWnd) > 0 {
			t.sched.Submit(id)
		}
	}
	t.kickTX()
}

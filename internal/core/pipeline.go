package core

import (
	"fmt"
	"math/bits"

	"flextoe/internal/conntab"
	"flextoe/internal/netsim"
	"flextoe/internal/nfp"
	"flextoe/internal/packet"
	"flextoe/internal/sched"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
	"flextoe/internal/trace"
	"flextoe/internal/xdp"
)

// Trace point aliases used by conn.go.
const (
	traceEstablished = trace.TPConnEstablished
	traceClosed      = trace.TPConnClosed
)

// Counters aggregates data-path statistics for experiments and tests.
type Counters struct {
	RxSegs         uint64
	RxBytes        uint64
	TxSegs         uint64
	TxBytes        uint64
	AcksSent       uint64
	AcksSuppressed uint64
	RxDropNoBuf    uint64
	RxToControl    uint64
	XDPDrops       uint64
	XDPTx          uint64
	XDPRedirects   uint64
	HCOps          uint64
	Notifies       uint64
	FastRetx       uint64
	// DupAcks counts received pure duplicate acknowledgments (same
	// cumulative ack, no payload, unchanged window, data outstanding) —
	// the ground truth flowmon's passive inference is checked against.
	DupAcks uint64
	// SACK loss-recovery accounting (Config.EnableSACK).
	SACKRetx    uint64 // fast retransmits repaired selectively (no reset)
	SACKReneges uint64 // scoreboard overflows: blocks discarded, go-back-N fallback
	RetxSegs    uint64 // transmitted segments carrying previously sent bytes
	RetxBytes   uint64 // previously transmitted payload bytes re-sent
	OOOAccepted uint64
	OOODropped  uint64
	// Reassembly interval-set accounting (Config.OOOIntervals).
	OOOMerges       uint64 // interval coalescings (insert-merge or in-order catch-up)
	OOODropsAvoided uint64 // accepted OOO segments a single-interval tracker would drop
}

// TOE is one FlexTOE data-path instance bound to a NIC interface.
type TOE struct {
	eng     *sim.Engine
	cfg     Config
	costs   Costs
	iface   *netsim.Iface
	dma     *nfp.DMAEngine
	copyRes *sim.Resource // shared-memory copy engine on x86/BlueField ports
	sched   *sched.Carousel
	trace   *trace.Registry

	// Connection slab: dense value blocks addressed by slot id, with a
	// flat flow-hash index and FIFO free-slot reuse (doc.go "Connection
	// state budget"). Replaces the old []*Conn + map[Flow]*Conn pair.
	connBlks     [][]Conn
	connFree     []uint32
	connFreeHead int
	connTop      uint32
	nLive        int
	flowIdx      *conntab.Index

	// TimerKick, installed by the control plane, marks a connection as
	// needing timer service (RTO/persist/CC); see maybeTimerKick.
	TimerKick func(id uint32)

	// dynOOOCap is the adaptive fleet-wide OOO interval budget
	// (SetDynOOOCap); 0 means the static Config.OOOIntervals applies.
	dynOOOCap uint8

	segPool  *shm.Pool
	descPool *shm.Pool

	// Shard-local pools: packets/frames come from this TOE's engine
	// (packet.PoolOf/netsim.FramesOf), and monoFree recycles the
	// run-to-completion work carriers per TOE. No pool state is shared
	// across shard engines (SHAREDSTATE.md).
	pkts     *packet.Pool
	frames   *netsim.FramePool
	monoFree shm.Freelist[monoWork]

	// ControlRx receives non-data-path segments (SYN, RST, unknown
	// flows); the control plane installs it.
	ControlRx func(*packet.Packet)

	// Pipeline stages.
	pre     *stage
	islands []*island
	dmaSt   *stage
	ctxSt   *stage
	mono    *nfp.FPC // run-to-completion ablation

	// XDP ingress chain (§3.3).
	xdpProgs []xdp.Program
	xdpSt    *stage

	// Module hooks (native modules on idle FPCs).
	mods []Module

	preLookup *nfp.Cache

	txInflight  int
	txPumpArmed bool

	// PacketTap, when set, observes every frame entering or leaving the
	// MAC (tcpdump; Table 2's logging build charges its cost).
	PacketTap     func(dir string, pkt *packet.Packet)
	PacketTapCost int64

	// OOOOccupancy samples the reassembly interval-set occupancy after
	// every segment that touched the set (accept, merge, or drop).
	OOOOccupancy *stats.LinearHist

	// segFree recycles segItems (see allocSeg/putSeg); xdpFree recycles
	// the XDP stage's serialization scratch. Both are steady-state
	// allocation-free.
	segFree shm.Freelist[segItem]
	xdpFree shm.Freelist[xdpWork]

	// Long-lived callbacks cached so hot-path scheduling never builds a
	// method-value closure (see sim.Engine.AtCall); segment-carrying
	// events use package-level functions and the item's toe pointer.
	txPumpFn  func()
	kickTXFn  func()
	controlCb func(any)

	Counters
}

// island groups the per-flow-group pipeline: the protocol-admission
// reorder buffer, protocol workers (atomic per connection), the
// post-processing stage, and the NBI transmission reorder buffer.
type island struct {
	fg      int
	entry   *rob
	protos  []*protoWorker
	post    *stage
	nbi     *rob
	ememCLS *nfp.Cache
}

type protoWorker struct {
	fpc   *nfp.FPC
	q     *sim.Queue[*segItem]
	cache *nfp.StateCache
	t     *TOE
	isl   *island
	fwdCb func(any) // bound once: forwards the item when the FPC task ends
}

// stage is a pool of FPCs serving one intake queue. freeMask is a bitset
// of FPC indices that may have an idle hardware thread, so dispatch picks
// the lowest-indexed free FPC in O(1) instead of scanning the pool per
// segment (wide stages paid that scan on every push). Stages wider than
// 64 FPCs fall back to the linear scan.
type stage struct {
	name     string
	q        *sim.Queue[*segItem]
	fpcs     []*nfp.FPC
	freeMask uint64
	taskOf   func(*segItem) sim.Task
	handler  func(*segItem)
	handleCb func(any) // bound once: adapts handler to the cb(arg) form
	qTrace   trace.Point
	t        *TOE
}

func (t *TOE) newStage(name string, n int, qTrace trace.Point,
	taskOf func(*segItem) sim.Task, handler func(*segItem)) *stage {
	s := &stage{
		name:    name,
		q:       sim.NewQueue[*segItem](t.eng, name, 0),
		taskOf:  taskOf,
		handler: handler,
		qTrace:  qTrace,
		t:       t,
	}
	s.handleCb = func(a any) { s.handler(a.(*segItem)) }
	for i := 0; i < n; i++ {
		f := nfp.NewFPC(t.eng, fmt.Sprintf("%s/%d", name, i), &t.cfg.NFP)
		f.SetThreads(t.cfg.ThreadsPerFPC)
		if i < 64 {
			bit := uint64(1) << i
			f.Idle = func() { s.freeMask |= bit; s.pump() }
			s.freeMask |= bit
		} else {
			f.Idle = s.pump
		}
		s.fpcs = append(s.fpcs, f)
	}
	return s
}

func (s *stage) push(item *segItem) {
	s.t.trace.HitN(s.qTrace, uint64(s.q.Len()))
	s.q.Push(item)
	s.pump()
}

// pickFPC returns the lowest-indexed FPC with a free hardware thread,
// clearing stale ready bits as it goes.
func (s *stage) pickFPC() *nfp.FPC {
	for m := s.freeMask; m != 0; {
		i := bits.TrailingZeros64(m)
		bit := uint64(1) << i
		if f := s.fpcs[i]; f.FreeThreads() > 0 {
			if f.FreeThreads() == 1 {
				// This dispatch takes the last thread; the Idle hook
				// re-arms the bit when one frees.
				s.freeMask &^= bit
			}
			return f
		}
		s.freeMask &^= bit
		m &^= bit
	}
	// Overflow FPCs (index >= 64) are not tracked in the mask.
	for i := 64; i < len(s.fpcs); i++ {
		if s.fpcs[i].FreeThreads() > 0 {
			return s.fpcs[i]
		}
	}
	return nil
}

func (s *stage) pump() {
	for s.q.Len() > 0 {
		f := s.pickFPC()
		if f == nil {
			return
		}
		item, _ := s.q.Pop()
		f.SubmitCall(s.taskOf(item), s.handleCb, item)
	}
}

// New builds a FlexTOE data-path on the given NIC interface.
func New(eng *sim.Engine, cfg Config, iface *netsim.Iface) *TOE {
	cfg.Validate()
	t := &TOE{
		eng:          eng,
		cfg:          cfg,
		costs:        DefaultCosts(),
		iface:        iface,
		trace:        &trace.Registry{},
		segPool:      shm.NewPool("seg", cfg.SegPoolSize),
		descPool:     shm.NewPool("desc", cfg.DescPoolSize),
		preLookup:    nfp.NewCache(cfg.NFP.PreLookupEntries, 1),
		OOOOccupancy: stats.NewLinearHist(tcpseg.MaxOOOIntervals),
		pkts:         packet.PoolOf(eng),
		frames:       netsim.FramesOf(eng),
	}
	t.flowIdx = conntab.New(func(slot uint32) packet.Flow { return t.connAt(slot).Flow })
	t.dma = nfp.NewDMAEngine(eng, &cfg.NFP)
	if cfg.CopyBytesPerSec > 0 {
		t.copyRes = sim.NewResource(eng, "memcpy", cfg.CopyBytesPerSec)
	}
	t.sched = sched.New(eng, cfg.SchedSlot, cfg.SchedSlots)
	t.txPumpFn = t.txPump
	t.kickTXFn = t.kickTX
	t.controlCb = func(a any) {
		pkt := a.(*packet.Packet)
		if cb := t.ControlRx; cb != nil {
			cb(pkt)
		}
		// The control plane reads the segment synchronously and must not
		// retain it (doc.go "Pooling ownership rules"); the data-path
		// still owns it and recycles it here.
		packet.Release(pkt)
	}

	if cfg.RunToCompletion {
		t.mono = nfp.NewFPC(eng, "mono", &cfg.NFP)
		t.mono.SetThreads(cfg.ThreadsPerFPC)
	} else {
		t.buildPipeline()
	}
	iface.Recv = t.rxFromWire
	return t
}

func (t *TOE) buildPipeline() {
	cfg := &t.cfg
	// Shared pre-processing pool: PreRepl FPCs per flow group, serving
	// segments of any flow (§4 "pre-processors handle segments for any
	// flow").
	t.pre = t.newStage("pre", cfg.PreRepl*cfg.FlowGroups, trace.TPQPre, t.preTask, t.preDone)

	emem := nfp.NewEMEMCache(&cfg.NFP)
	for fg := 0; fg < cfg.FlowGroups; fg++ {
		isl := &island{fg: fg}
		isl.entry = newROB(func(s *segItem) { t.protoAdmit(isl, s) })
		cls := nfp.NewCLSCache(&cfg.NFP)
		isl.ememCLS = cls
		for i := 0; i < cfg.ProtoRepl; i++ {
			pw := &protoWorker{
				fpc:   nfp.NewFPC(t.eng, fmt.Sprintf("proto%d/%d", fg, i), &cfg.NFP),
				q:     sim.NewQueue[*segItem](t.eng, fmt.Sprintf("protoq%d/%d", fg, i), 0),
				cache: nfp.NewStateCache(&cfg.NFP, cls, emem),
				t:     t,
				isl:   isl,
			}
			pw.fpc.SetThreads(cfg.ThreadsPerFPC)
			pw.fpc.Idle = pw.pump
			pw.fwdCb = func(a any) { pw.t.protoForward(pw.isl, a.(*segItem)) }
			isl.protos = append(isl.protos, pw)
		}
		isl.post = t.newStage(fmt.Sprintf("post%d", fg), cfg.PostRepl, trace.TPQPost,
			t.postTask, func(s *segItem) { t.postDone(isl, s) })
		isl.nbi = newROB(t.nbiOut)
		t.islands = append(t.islands, isl)
	}

	t.dmaSt = t.newStage("dma", cfg.DMARepl, trace.TPQDMA, t.dmaTask, t.dmaDone)
	t.ctxSt = t.newStage("ctxq", cfg.CtxRepl, trace.TPQCtx, t.ctxTask, t.ctxDone)
}

// Trace returns the tracepoint registry (enable for the Table 2 builds).
func (t *TOE) Trace() *trace.Registry { return t.trace }

// Sched exposes the flow scheduler (for control-plane rate programming).
func (t *TOE) Sched() *sched.Carousel { return t.sched }

// Engine returns the simulation engine the data-path runs on.
func (t *TOE) Engine() *sim.Engine { return t.eng }

// Config returns the active configuration.
func (t *TOE) Config() *Config { return &t.cfg }

// Costs returns the mutable cost table (calibration knobs).
func (t *TOE) CostTable() *Costs { return &t.costs }

// tsNow is the TCP timestamp clock in microseconds.
func (t *TOE) tsNow() uint32 { return uint32(t.eng.Now() / sim.Microsecond) }

// ---------------------------------------------------------------------
// RX path (§3.1.3, Fig. 6)
// ---------------------------------------------------------------------

func (t *TOE) rxFromWire(f *netsim.Frame) {
	// The frame's journey ends at the MAC; the packet's continues through
	// the pipeline under the segItem's ownership.
	pkt := f.Pkt
	netsim.ReleaseFrame(f)
	if t.PacketTap != nil {
		t.PacketTap("rx", pkt)
	}
	if t.mono != nil {
		t.monoRX(pkt)
		return
	}
	if len(t.xdpProgs) > 0 {
		t.xdpIngress(pkt)
		return
	}
	t.rxToPre(pkt)
}

func (t *TOE) rxToPre(pkt *packet.Packet) {
	if !t.segPool.TryAlloc() {
		t.RxDropNoBuf++
		t.trace.Hit(trace.TPSegAllocFail)
		packet.Release(pkt)
		return
	}
	item := t.allocSeg()
	item.kind = segRX
	item.pkt = pkt
	item.entered = t.eng.Now()
	// Sequencing happens at pipeline entry (§3.2: "we assign a sequence
	// number to each segment entering the pipeline"): the NBI computes
	// the flow-group hash in hardware, so the ticket predates the
	// variable-latency pre-processing stage it will re-order.
	item.fg = pkt.Flow().Reverse().FlowGroup(t.cfg.FlowGroups)
	item.ticket = t.islands[item.fg].entry.ticket()
	t.pre.push(item)
}

// preTask: Val + Id (+ IMEM lookup stall on cache miss) + Sum + Steer for
// RX; Alloc + Head + Steer for TX (Fig. 5/6).
func (t *TOE) preTask(s *segItem) sim.Task {
	c := &t.costs
	switch s.kind {
	case segRX:
		instr := c.PreValidate + c.PreLookup + c.PreSummary + c.PreSteer
		instr += t.trace.Hit(trace.TPPreSteer)
		if t.PacketTap != nil {
			instr += t.PacketTapCost // tcpdump-style per-packet copy
		}
		var stall sim.Time
		key := uint64(s.pkt.Flow().Hash())
		if !t.preLookup.Access(key) {
			stall = t.cfg.NFP.CyclesTime(t.cfg.NFP.IMEMCycles)
			t.trace.Hit(trace.TPPreLookupMiss)
		}
		if t.cfg.SoftwareRings {
			instr += c.RingOp
		}
		if t.cfg.NetifStage {
			instr += c.Netif
		}
		return sim.TaskC(t.scale(instr)).Add(0, stall)
	case segTX:
		instr := c.PreAlloc + c.PreHeader + c.PreSteer
		if t.cfg.SoftwareRings {
			instr += c.RingOp
		}
		return sim.TaskC(t.scale(instr))
	default: // segHC: Fetch already done by ctx stage; Steer only.
		return sim.TaskC(t.scale(c.PreSteer))
	}
}

func (t *TOE) preDone(s *segItem) {
	isl := t.islands[s.fg]
	switch s.kind {
	case segRX:
		pkt := s.pkt
		// Filter non-data-path segments to the control plane (§3.1.3).
		if !pkt.TCP.IsDataPath() {
			s.pkt = nil
			t.toControl(pkt)
			isl.entry.skip(s.ticket)
			t.segPool.Free()
			t.putSeg(s)
			return
		}
		// The NIC sees the flow from the sender's perspective; our
		// connection table is keyed by the local endpoint's view.
		flow := pkt.Flow().Reverse()
		conn := t.lookupFlow(flow)
		if conn == nil {
			s.pkt = nil
			t.toControl(pkt)
			isl.entry.skip(s.ticket)
			t.segPool.Free()
			t.putSeg(s)
			return
		}
		s.conn = conn.ID
		s.info = tcpseg.Summarize(pkt)
		isl.entry.submit(s.ticket, s)
	case segTX, segHC:
		isl.entry.submit(s.ticket, s)
	}
}

// toControl hands a segment to the control plane. Ownership of the packet
// moves with it: the delivery event releases the packet after the
// callback returns (callbacks must not retain it).
func (t *TOE) toControl(pkt *packet.Packet) {
	t.RxToControl++
	t.trace.Hit(trace.TPPreFilterControl)
	if t.ControlRx == nil {
		packet.Release(pkt)
		return
	}
	t.eng.ImmediatelyCall(t.controlCb, pkt)
}

// protoAdmit distributes in-order segments to the connection's protocol
// worker (same connection -> same worker: atomicity without locks).
func (t *TOE) protoAdmit(isl *island, s *segItem) {
	w := isl.protos[int(s.conn)%len(isl.protos)]
	t.trace.HitN(trace.TPQProto, uint64(w.q.Len()))
	w.q.Push(s)
	w.pump()
}

func (w *protoWorker) pump() {
	for w.q.Len() > 0 && w.fpc.FreeThreads() > 0 {
		item, _ := w.q.Pop()
		task := w.taskOf(item)
		// The protocol stage is atomic (§3.1: "the only pipeline
		// hazard"): state mutations execute here, in admission order,
		// under the connection's critical section. The FPC task then
		// accounts for the time; hardware threads overlap only the
		// stall portions of *different* segments.
		w.t.protoExec(w.isl, item)
		w.fpc.SubmitCall(task, w.fwdCb, item)
	}
}

func (w *protoWorker) taskOf(s *segItem) sim.Task {
	t := w.t
	c := &t.costs
	stall := w.cache.Access(uint64(s.conn))
	seqCost := c.SeqTicket + c.SeqReorder // sequencer FPCs (§3.2), charged here
	var instr int64
	switch s.kind {
	case segRX:
		instr = c.ProtoRX
		instr += t.trace.Hit(trace.TPProtoRX) + t.trace.Hit(trace.TPCritRX)
	case segTX:
		instr = c.ProtoTX
		instr += t.trace.Hit(trace.TPProtoTX) + t.trace.Hit(trace.TPCritTX)
	case segHC:
		instr = c.ProtoHC
		instr += t.trace.Hit(trace.TPProtoHC) + t.trace.Hit(trace.TPCritHC)
	}
	if t.cfg.SoftwareRings {
		instr += c.RingOp
	}
	return sim.TaskC(t.scale(instr+seqCost)).Add(0, stall)
}

// protoExec executes the real protocol logic at the atomic point, in
// admission (ticket) order. It records what happened on the segItem;
// protoForward routes the item onward when the FPC task completes.
func (t *TOE) protoExec(isl *island, s *segItem) {
	conn := t.connOrNil(s.conn)
	if conn == nil {
		s.dropped = true
		return
	}
	switch s.kind {
	case segRX:
		// Adaptive OOOCap: adopt the fleet-wide budget lazily, on the
		// connection's next RX (SetDynOOOCap never walks the table).
		if cap := t.dynOOOCap; cap != 0 && conn.Proto.OOOCap != cap {
			conn.Proto.OOOCap = cap
		}
		s.rx = tcpseg.ProcessRX(&conn.Proto, &conn.Post, &s.info, t.tsNow())
		if s.rx.SACKReneged {
			t.SACKReneges++
		}
		if s.rx.FastRetransmit {
			t.FastRetx++
			if s.rx.SACKRetransmit {
				t.SACKRetx++
			}
			t.trace.Hit(trace.TPConnFastRetx)
		}
		t.countReassembly(&s.rx)
		// Delayed-ACK extension: suppress all but every Nth ACK unless
		// the segment demands attention (OOO activity, FIN, window
		// edge). ACKs that merge intervals, leave intervals outstanding,
		// or carry SACK blocks are recovery-critical — the peer's
		// selective-retransmit machinery keys off them — and are never
		// suppressed.
		if s.rx.SendAck && t.cfg.AckEvery > 1 && s.rx.WriteLen > 0 &&
			!s.rx.WasOOO && !s.rx.OOODrop && !s.rx.FinRx && !s.rx.FastRetransmit &&
			s.rx.OOOMerged == 0 && s.rx.OOOIvs == 0 && s.rx.AckSACKCnt == 0 {
			conn.ackSkip++
			if int(conn.ackSkip) < t.cfg.AckEvery {
				s.rx.SendAck = false
				t.AcksSuppressed++
			} else {
				conn.ackSkip = 0
			}
		}
		if s.rx.SendAck {
			s.hasNBI = true
			s.nbiTicket = isl.nbi.ticket()
		}
	case segTX:
		txr, ok := tcpseg.ProcessTX(&conn.Proto, &conn.Post, t.cfg.MSS, conn.CWnd)
		if !ok {
			// Window closed between scheduling and protocol.
			s.dropped = true
			return
		}
		s.tx = txr
		s.hasNBI = true
		s.nbiTicket = isl.nbi.ticket()
	case segHC:
		s.hcOp = hcOpOf(s.hc)
		res := tcpseg.ProcessHC(&conn.Proto, &conn.Post, s.hcOp)
		if res.Reset {
			t.trace.Hit(trace.TPConnRetransmit)
		}
		if res.SendWindowUpdate {
			// Re-advertise the reopened window as a pure ACK, or the
			// sender stalls at zero window forever.
			s.rx = tcpseg.WindowUpdateAck(&conn.Proto)
			s.hasNBI = true
			s.nbiTicket = isl.nbi.ticket()
		}
	}
	t.maybeTimerKick(conn)
}

// countReassembly updates the OOO reassembly counters and the occupancy
// histogram from one RX result (shared by the pipeline's protocol stage
// and the run-to-completion ablation).
func (t *TOE) countReassembly(res *tcpseg.RXResult) {
	if res.DupAck {
		t.DupAcks++
		t.trace.Hit(trace.TPConnDupAck)
	}
	if res.WasOOO {
		t.OOOAccepted++
		t.trace.Hit(trace.TPConnOOO)
		if res.OOODropAvoided {
			t.OOODropsAvoided++
		}
	}
	if res.OOODrop {
		t.OOODropped++
		t.trace.Hit(trace.TPConnOOODrop)
	}
	t.OOOMerges += uint64(res.OOOMerged)
	if res.WasOOO || res.OOODrop || res.OOOMerged > 0 {
		t.OOOOccupancy.Record(int(res.OOOIvs))
	}
}

// protoForward routes a segment onward after the protocol stage's
// processing time has elapsed.
func (t *TOE) protoForward(isl *island, s *segItem) {
	if s.dropped {
		t.releaseSeg(isl, s)
		return
	}
	if t.connOrNil(s.conn) == nil {
		t.releaseSeg(isl, s)
		return
	}
	isl.post.push(s)
}

func hcOpOf(d shm.Desc) tcpseg.HCOp {
	switch d.Kind {
	case shm.DescTxBump:
		return tcpseg.HCOp{Kind: tcpseg.HCTx, Bytes: d.Bytes}
	case shm.DescRxConsume:
		return tcpseg.HCOp{Kind: tcpseg.HCRxConsumed, Bytes: d.Bytes}
	case shm.DescFin:
		return tcpseg.HCOp{Kind: tcpseg.HCFin}
	default:
		return tcpseg.HCOp{Kind: tcpseg.HCRetransmit}
	}
}

// postTask: Ack + Stamp + Stats for RX, Pos for TX, FS update for HC.
func (t *TOE) postTask(s *segItem) sim.Task {
	c := &t.costs
	var instr int64
	switch s.kind {
	case segRX:
		instr = c.PostStats + c.PostPos
		if s.rx.SendAck {
			instr += c.PostAck
			if t.cfg.UseTimestamps {
				instr += c.PostStamp
			}
		}
		if s.rx.NewInOrder > 0 || s.rx.AckedBytes > 0 || s.rx.FinRx {
			instr += c.PostNotify
		}
		instr += t.trace.Hit(trace.TPPostStats)
	case segTX:
		instr = c.PostPos + c.PostStats
	case segHC:
		instr = c.PostStats
	}
	if t.cfg.SoftwareRings {
		instr += c.RingOp
	}
	// CTM access for the post partition state.
	stall := t.stateStall()
	return sim.TaskC(t.scale(instr)).Add(0, stall)
}

func (t *TOE) stateStall() sim.Time {
	if t.cfg.FlatMemory {
		return t.cfg.NFP.CyclesTime(t.cfg.FlatMemCycles)
	}
	return t.cfg.NFP.CyclesTime(t.cfg.NFP.CTMCycles)
}

func (t *TOE) postDone(isl *island, s *segItem) {
	conn := t.connOrNil(s.conn)
	if conn == nil {
		t.releaseSeg(isl, s)
		return
	}
	switch s.kind {
	case segRX:
		t.RxSegs++
		t.RxBytes += uint64(s.info.PayloadLen)
		// Flow-scheduler update: the ACK may have opened the window.
		if tcpseg.SendableBytes(&conn.Proto, conn.CWnd) > 0 {
			t.submitFlow(conn)
		}
		t.dmaSt.push(s)
	case segTX:
		t.dmaSt.push(s)
	case segHC:
		t.HCOps++
		t.descPool.Free()
		if s.hasNBI {
			// Window-update ACK rides out through the NBI in order.
			if t.segPool.TryAlloc() {
				s.pkt = t.buildAck(conn, s)
				t.nbiSubmit(isl, s)
			} else {
				isl.nbi.skip(s.nbiTicket)
			}
		}
		if tcpseg.SendableBytes(&conn.Proto, conn.CWnd) > 0 || conn.Proto.TxAvail > 0 ||
			s.hc.Kind == shm.DescFin || s.hc.Kind == shm.DescRetransmit {
			// FIN and retransmit requests must reach the scheduler even
			// with an empty transmit buffer.
			t.submitFlow(conn)
		}
		t.kickTX()
		// The HC item's journey ends at the post stage (the NBI holds its
		// own reference if an ACK rides out).
		t.putSeg(s)
	}
}

// dmaTask models descriptor construction; the PCIe/copy latency itself is
// asynchronous (the DMA engine), so the FPC only pays issue cost.
func (t *TOE) dmaTask(s *segItem) sim.Task {
	instr := t.costs.DMAIssue
	if t.cfg.SoftwareRings {
		instr += t.costs.RingOp
	}
	if t.PacketTap != nil {
		instr += t.PacketTapCost // egress logging
	}
	return sim.TaskC(t.scale(instr))
}

func (t *TOE) dmaDone(s *segItem) {
	conn := t.connOrNil(s.conn)
	isl := t.islands[s.fg]
	if conn == nil {
		t.releaseSeg(isl, s)
		return
	}
	// Pin the connection across the asynchronous transfer, exactly as the
	// old closure captured it.
	s.connRef = conn
	switch s.kind {
	case segRX:
		if s.rx.WriteLen > 0 {
			t.trace.Hit(trace.TPDMAPayloadRX)
			t.xferCall(int(s.rx.WriteLen), rxPayloadLanded, s)
			return
		}
		t.rxComplete(s)
	case segTX:
		t.trace.Hit(trace.TPDMAPayloadTX)
		t.xferCall(int(s.tx.Len)+64, txPayloadFetched, s) // descriptor + payload fetch
	}
}

// rxPayloadLanded runs when the RX payload DMA completes: one-shot, the
// payload lands directly in the host receive buffer.
func rxPayloadLanded(a any) {
	s := a.(*segItem)
	conn := s.connRef
	conn.RxBuf.WriteAt(s.rx.WritePos, s.pkt.Payload[s.rx.WriteOff:s.rx.WriteOff+s.rx.WriteLen])
	s.toe.rxComplete(s)
}

// rxComplete finishes the RX workflow after any payload DMA. Ordering
// (§3.1.3): ACK and notification leave only after the payload DMA
// completes. The received packet's journey ends here: the ACK (if any) is
// a fresh pooled packet.
func (t *TOE) rxComplete(s *segItem) {
	conn := s.connRef
	isl := t.islands[s.fg]
	if s.rx.SendAck {
		ack := t.buildAck(conn, s)
		packet.Release(s.pkt)
		s.pkt = ack
		t.nbiSubmit(isl, s)
	} else {
		t.segPool.Free()
		packet.Release(s.pkt)
		s.pkt = nil
	}
	t.notifyHost(conn, s)
	t.putSeg(s)
}

// txPayloadFetched runs when the TX descriptor + payload DMA completes:
// the segment is built from the host buffer bytes and queued for in-order
// transmission.
func txPayloadFetched(a any) {
	s := a.(*segItem)
	t := s.toe
	s.pkt = t.buildData(s.connRef, s)
	t.nbiSubmit(t.islands[s.fg], s)
	t.putSeg(s)
}

// xfer moves n bytes across the host boundary: PCIe DMA on the Agilio,
// shared-memory copy on the ports.
func (t *TOE) xfer(n int, done func()) {
	if n <= 0 {
		t.eng.Immediately(done)
		return
	}
	if t.copyRes != nil {
		t.copyRes.Acquire(int64(n), t.cfg.NFP.PCIeLatency, done)
		return
	}
	t.dma.Issue(n, done)
}

// xferCall is the allocation-free xfer: cb(arg) runs at completion.
func (t *TOE) xferCall(n int, cb func(any), arg any) {
	if n <= 0 {
		t.eng.ImmediatelyCall(cb, arg)
		return
	}
	if t.copyRes != nil {
		t.copyRes.AcquireCall(int64(n), t.cfg.NFP.PCIeLatency, cb, arg)
		return
	}
	t.dma.IssueCall(n, cb, arg)
}

// notifyHost emits context-queue notifications for newly in-order payload,
// freed transmit buffer space, and peer FINs.
func (t *TOE) notifyHost(conn *Conn, s *segItem) {
	if s.rx.NewInOrder > 0 {
		t.pushNotif(conn, shm.Desc{Kind: shm.DescRxNotify, Conn: conn.ID, Bytes: s.rx.NewInOrder, Opaque: conn.Post.Opaque})
	}
	if s.rx.AckedBytes > 0 {
		t.pushNotif(conn, shm.Desc{Kind: shm.DescTxFree, Conn: conn.ID, Bytes: s.rx.AckedBytes, Opaque: conn.Post.Opaque})
	}
	if s.rx.FinRx {
		t.pushNotif(conn, shm.Desc{Kind: shm.DescFinRx, Conn: conn.ID, Opaque: conn.Post.Opaque})
	}
}

func (t *TOE) pushNotif(conn *Conn, d shm.Desc) {
	n := t.allocSeg()
	n.kind = segHC
	n.conn = conn.ID
	n.fg = int(conn.fg)
	n.hc = d
	t.ctxSt.push(n)
}

func (t *TOE) ctxTask(s *segItem) sim.Task {
	instr := t.costs.CtxQNotify
	if t.cfg.SoftwareRings {
		instr += t.costs.RingOp
	}
	instr += t.trace.Hit(trace.TPCtxQNotify)
	return sim.TaskC(t.scale(instr))
}

func (t *TOE) ctxDone(s *segItem) {
	conn := t.connOrNil(s.conn)
	if conn == nil {
		t.putSeg(s)
		return
	}
	s.connRef = conn
	t.xferCall(shm.DescWireSize, notifDelivered, s)
}

// notifDelivered runs when the descriptor DMA to the host completes.
func notifDelivered(a any) {
	s := a.(*segItem)
	t := s.toe
	t.Notifies++
	t.trace.Hit(trace.TPDMADescriptor)
	if s.connRef.Notify != nil {
		s.connRef.Notify(s.hc)
	}
	t.putSeg(s)
}

// nbiOut transmits a frame in ticket order, frees its segment buffer, and
// drops the reorder buffer's reference on the item. Ownership of the
// packet transfers to the fabric with sendFrame.
func (t *TOE) nbiOut(s *segItem) {
	pkt := s.pkt
	s.pkt = nil
	if pkt == nil {
		t.segPool.Free()
		t.putSeg(s)
		return
	}
	if s.kind == segTX {
		t.TxSegs++
		t.TxBytes += uint64(s.tx.Len)
		if s.tx.RetxBytes > 0 {
			t.RetxSegs++
			t.RetxBytes += uint64(s.tx.RetxBytes)
		}
		t.txInflight--
		t.kickTX()
	} else {
		t.AcksSent++
	}
	t.sendFrame(pkt)
	t.segPool.Free()
	t.putSeg(s)
}

func (t *TOE) sendFrame(pkt *packet.Packet) {
	if t.PacketTap != nil {
		t.PacketTap("tx", pkt)
	}
	t.iface.Send(t.frames.NewFrame(pkt, t.eng.Now()))
}

// SendControlFrame transmits a control-plane segment (handshake, RST)
// directly via the MAC, bypassing the offloaded data-path — connection
// management deliberately lives outside the pipeline (§3).
func (t *TOE) SendControlFrame(pkt *packet.Packet) {
	w := t.getMonoWork()
	w.t, w.pkt = t, pkt
	t.eng.AfterCall(t.cfg.NFP.MMIOLatency, sendCtrlFrame, w)
}

func sendCtrlFrame(a any) {
	w := a.(*monoWork)
	t, pkt := w.t, w.pkt
	t.putMonoWork(w)
	t.sendFrame(pkt)
}

// MAC returns the NIC's Ethernet address.
func (t *TOE) MAC() packet.EtherAddr { return t.iface.MAC }

// releaseSeg drops a segment mid-pipeline, skipping its NBI ticket so the
// reorder buffer never stalls and returning its pool resources (including
// the packet, whose journey ends here).
func (t *TOE) releaseSeg(isl *island, s *segItem) {
	if s.hasNBI {
		isl.nbi.skip(s.nbiTicket)
	}
	if s.pkt != nil {
		packet.Release(s.pkt)
		s.pkt = nil
	}
	switch s.kind {
	case segRX:
		t.segPool.Free()
	case segTX:
		t.segPool.Free()
		t.txInflight--
		t.kickTX()
	case segHC:
		t.descPool.Free()
	}
	t.putSeg(s)
}

// buildAck constructs the acknowledgment segment the post stage prepared,
// into a recycled packet (ownership transfers to the fabric at nbiOut).
func (t *TOE) buildAck(conn *Conn, s *segItem) *packet.Packet {
	flags := packet.FlagACK
	if s.rx.AckECE {
		flags |= packet.FlagECE
	}
	pkt := t.pkts.Get()
	pkt.Eth = packet.Ethernet{Src: t.iface.MAC, Dst: conn.Pre.PeerMAC, EtherType: packet.EtherTypeIPv4}
	pkt.IP = packet.IPv4{
		TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
		Src: conn.Pre.LocalIP, Dst: conn.Pre.PeerIP,
	}
	pkt.TCP = packet.TCP{
		SrcPort: conn.Pre.LocalPort, DstPort: conn.Pre.RemotePort,
		Seq: s.rx.AckSeq, Ack: s.rx.AckAck, Flags: flags,
		Window: s.rx.AckWin, WScale: -1,
	}
	// SACK blocks the protocol stage derived from the reassembly interval
	// set; the wire encoder fits 3 alongside timestamps, 4 otherwise.
	for i := uint8(0); i < s.rx.AckSACKCnt; i++ {
		pkt.TCP.AddSACK(packet.SACKBlock{Start: s.rx.AckSACK[i].Start, End: s.rx.AckSACK[i].End})
	}
	if t.cfg.UseTimestamps {
		pkt.TCP.HasTimestamp = true
		pkt.TCP.TSVal = t.tsNow()
		pkt.TCP.TSEcr = s.rx.EchoTS
	}
	return pkt
}

// buildData constructs a data segment into a recycled packet, fetching
// real payload bytes from the host transmit buffer into the packet's
// slab-backed payload (the DMA the paper's TX pipeline performs).
func (t *TOE) buildData(conn *Conn, s *segItem) *packet.Packet {
	flags := packet.FlagACK | packet.FlagPSH
	if s.tx.FIN {
		flags |= packet.FlagFIN
		t.trace.Hit(trace.TPConnFinTx)
	}
	pkt := t.pkts.Get()
	payload := pkt.GrowPayload(int(s.tx.Len))
	conn.TxBuf.ReadAt(s.tx.BufPos, payload)
	pkt.Eth = packet.Ethernet{Src: t.iface.MAC, Dst: conn.Pre.PeerMAC, EtherType: packet.EtherTypeIPv4}
	pkt.IP = packet.IPv4{
		TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
		Src: conn.Pre.LocalIP, Dst: conn.Pre.PeerIP,
	}
	pkt.TCP = packet.TCP{
		SrcPort: conn.Pre.LocalPort, DstPort: conn.Pre.RemotePort,
		Seq: s.tx.Seq, Ack: s.tx.Ack, Flags: flags,
		Window: s.tx.Win, WScale: -1,
	}
	// Piggyback SACK blocks the protocol stage copied from the reassembly
	// interval set (Config.EnableSACK), so heavily bidirectional flows
	// learn about holes without waiting for a pure ACK.
	for i := uint8(0); i < s.tx.SACKCnt; i++ {
		pkt.TCP.AddSACK(packet.SACKBlock{Start: s.tx.SACK[i].Start, End: s.tx.SACK[i].End})
	}
	if t.cfg.UseTimestamps {
		pkt.TCP.HasTimestamp = true
		pkt.TCP.TSVal = t.tsNow()
		pkt.TCP.TSEcr = s.tx.EchoTS
	}
	return pkt
}

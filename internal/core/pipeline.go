package core

import (
	"fmt"

	"flextoe/internal/netsim"
	"flextoe/internal/nfp"
	"flextoe/internal/packet"
	"flextoe/internal/sched"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
	"flextoe/internal/trace"
	"flextoe/internal/xdp"
)

// Trace point aliases used by conn.go.
const (
	traceEstablished = trace.TPConnEstablished
	traceClosed      = trace.TPConnClosed
)

// Counters aggregates data-path statistics for experiments and tests.
type Counters struct {
	RxSegs         uint64
	RxBytes        uint64
	TxSegs         uint64
	TxBytes        uint64
	AcksSent       uint64
	AcksSuppressed uint64
	RxDropNoBuf    uint64
	RxToControl    uint64
	XDPDrops       uint64
	XDPTx          uint64
	XDPRedirects   uint64
	HCOps          uint64
	Notifies       uint64
	FastRetx       uint64
	// SACK loss-recovery accounting (Config.EnableSACK).
	SACKRetx    uint64 // fast retransmits repaired selectively (no reset)
	RetxSegs    uint64 // transmitted segments carrying previously sent bytes
	RetxBytes   uint64 // previously transmitted payload bytes re-sent
	OOOAccepted uint64
	OOODropped  uint64
	// Reassembly interval-set accounting (Config.OOOIntervals).
	OOOMerges       uint64 // interval coalescings (insert-merge or in-order catch-up)
	OOODropsAvoided uint64 // accepted OOO segments a single-interval tracker would drop
}

// TOE is one FlexTOE data-path instance bound to a NIC interface.
type TOE struct {
	eng     *sim.Engine
	cfg     Config
	costs   Costs
	iface   *netsim.Iface
	dma     *nfp.DMAEngine
	copyRes *sim.Resource // shared-memory copy engine on x86/BlueField ports
	sched   *sched.Carousel
	trace   *trace.Registry

	conns      []*Conn
	connByFlow map[packet.Flow]*Conn

	segPool  *shm.Pool
	descPool *shm.Pool

	// ControlRx receives non-data-path segments (SYN, RST, unknown
	// flows); the control plane installs it.
	ControlRx func(*packet.Packet)

	// Pipeline stages.
	pre     *stage
	islands []*island
	dmaSt   *stage
	ctxSt   *stage
	mono    *nfp.FPC // run-to-completion ablation

	// XDP ingress chain (§3.3).
	xdpProgs []xdp.Program
	xdpSt    *stage

	// Module hooks (native modules on idle FPCs).
	mods []Module

	preLookup *nfp.Cache

	txInflight  int
	txPumpArmed bool

	// PacketTap, when set, observes every frame entering or leaving the
	// MAC (tcpdump; Table 2's logging build charges its cost).
	PacketTap     func(dir string, pkt *packet.Packet)
	PacketTapCost int64

	// OOOOccupancy samples the reassembly interval-set occupancy after
	// every segment that touched the set (accept, merge, or drop).
	OOOOccupancy *stats.LinearHist

	Counters
}

// island groups the per-flow-group pipeline: the protocol-admission
// reorder buffer, protocol workers (atomic per connection), the
// post-processing stage, and the NBI transmission reorder buffer.
type island struct {
	fg      int
	entry   *rob
	protos  []*protoWorker
	post    *stage
	nbi     *rob
	ememCLS *nfp.Cache
}

type protoWorker struct {
	fpc   *nfp.FPC
	q     *sim.Queue[*segItem]
	cache *nfp.StateCache
	t     *TOE
	isl   *island
}

// stage is a pool of FPCs serving one intake queue.
type stage struct {
	name    string
	q       *sim.Queue[*segItem]
	fpcs    []*nfp.FPC
	taskOf  func(*segItem) sim.Task
	handler func(*segItem)
	qTrace  trace.Point
	t       *TOE
}

func (t *TOE) newStage(name string, n int, qTrace trace.Point,
	taskOf func(*segItem) sim.Task, handler func(*segItem)) *stage {
	s := &stage{
		name:    name,
		q:       sim.NewQueue[*segItem](t.eng, name, 0),
		taskOf:  taskOf,
		handler: handler,
		qTrace:  qTrace,
		t:       t,
	}
	for i := 0; i < n; i++ {
		f := nfp.NewFPC(t.eng, fmt.Sprintf("%s/%d", name, i), &t.cfg.NFP)
		f.SetThreads(t.cfg.ThreadsPerFPC)
		f.Idle = s.pump
		s.fpcs = append(s.fpcs, f)
	}
	return s
}

func (s *stage) push(item *segItem) {
	s.t.trace.HitN(s.qTrace, uint64(s.q.Len()))
	s.q.Push(item)
	s.pump()
}

func (s *stage) pump() {
	for s.q.Len() > 0 {
		var f *nfp.FPC
		for _, c := range s.fpcs {
			if c.FreeThreads() > 0 {
				f = c
				break
			}
		}
		if f == nil {
			return
		}
		item, _ := s.q.Pop()
		f.Submit(s.taskOf(item), func() { s.handler(item) })
	}
}

// New builds a FlexTOE data-path on the given NIC interface.
func New(eng *sim.Engine, cfg Config, iface *netsim.Iface) *TOE {
	cfg.Validate()
	t := &TOE{
		eng:          eng,
		cfg:          cfg,
		costs:        DefaultCosts(),
		iface:        iface,
		trace:        &trace.Registry{},
		connByFlow:   make(map[packet.Flow]*Conn),
		segPool:      shm.NewPool("seg", cfg.SegPoolSize),
		descPool:     shm.NewPool("desc", cfg.DescPoolSize),
		preLookup:    nfp.NewCache(cfg.NFP.PreLookupEntries, 1),
		OOOOccupancy: stats.NewLinearHist(tcpseg.MaxOOOIntervals),
	}
	t.dma = nfp.NewDMAEngine(eng, &cfg.NFP)
	if cfg.CopyBytesPerSec > 0 {
		t.copyRes = sim.NewResource(eng, "memcpy", cfg.CopyBytesPerSec)
	}
	t.sched = sched.New(eng, cfg.SchedSlot, cfg.SchedSlots)

	if cfg.RunToCompletion {
		t.mono = nfp.NewFPC(eng, "mono", &cfg.NFP)
		t.mono.SetThreads(cfg.ThreadsPerFPC)
	} else {
		t.buildPipeline()
	}
	iface.Recv = t.rxFromWire
	return t
}

func (t *TOE) buildPipeline() {
	cfg := &t.cfg
	// Shared pre-processing pool: PreRepl FPCs per flow group, serving
	// segments of any flow (§4 "pre-processors handle segments for any
	// flow").
	t.pre = t.newStage("pre", cfg.PreRepl*cfg.FlowGroups, trace.TPQPre, t.preTask, t.preDone)

	emem := nfp.NewEMEMCache(&cfg.NFP)
	for fg := 0; fg < cfg.FlowGroups; fg++ {
		isl := &island{fg: fg}
		isl.entry = newROB(func(s *segItem) { t.protoAdmit(isl, s) })
		cls := nfp.NewCLSCache(&cfg.NFP)
		isl.ememCLS = cls
		for i := 0; i < cfg.ProtoRepl; i++ {
			pw := &protoWorker{
				fpc:   nfp.NewFPC(t.eng, fmt.Sprintf("proto%d/%d", fg, i), &cfg.NFP),
				q:     sim.NewQueue[*segItem](t.eng, fmt.Sprintf("protoq%d/%d", fg, i), 0),
				cache: nfp.NewStateCache(&cfg.NFP, cls, emem),
				t:     t,
				isl:   isl,
			}
			pw.fpc.SetThreads(cfg.ThreadsPerFPC)
			pw.fpc.Idle = pw.pump
			isl.protos = append(isl.protos, pw)
		}
		isl.post = t.newStage(fmt.Sprintf("post%d", fg), cfg.PostRepl, trace.TPQPost,
			t.postTask, func(s *segItem) { t.postDone(isl, s) })
		isl.nbi = newROB(t.nbiOut)
		t.islands = append(t.islands, isl)
	}

	t.dmaSt = t.newStage("dma", cfg.DMARepl, trace.TPQDMA, t.dmaTask, t.dmaDone)
	t.ctxSt = t.newStage("ctxq", cfg.CtxRepl, trace.TPQCtx, t.ctxTask, t.ctxDone)
}

// Trace returns the tracepoint registry (enable for the Table 2 builds).
func (t *TOE) Trace() *trace.Registry { return t.trace }

// Sched exposes the flow scheduler (for control-plane rate programming).
func (t *TOE) Sched() *sched.Carousel { return t.sched }

// Engine returns the simulation engine the data-path runs on.
func (t *TOE) Engine() *sim.Engine { return t.eng }

// Config returns the active configuration.
func (t *TOE) Config() *Config { return &t.cfg }

// Costs returns the mutable cost table (calibration knobs).
func (t *TOE) CostTable() *Costs { return &t.costs }

// tsNow is the TCP timestamp clock in microseconds.
func (t *TOE) tsNow() uint32 { return uint32(t.eng.Now() / sim.Microsecond) }

// ---------------------------------------------------------------------
// RX path (§3.1.3, Fig. 6)
// ---------------------------------------------------------------------

func (t *TOE) rxFromWire(f *netsim.Frame) {
	if t.PacketTap != nil {
		t.PacketTap("rx", f.Pkt)
	}
	if t.mono != nil {
		t.monoRX(f)
		return
	}
	if len(t.xdpProgs) > 0 {
		t.xdpIngress(f)
		return
	}
	t.rxToPre(f)
}

func (t *TOE) rxToPre(f *netsim.Frame) {
	if !t.segPool.TryAlloc() {
		t.RxDropNoBuf++
		t.trace.Hit(trace.TPSegAllocFail)
		return
	}
	item := &segItem{kind: segRX, pkt: f.Pkt, entered: t.eng.Now()}
	// Sequencing happens at pipeline entry (§3.2: "we assign a sequence
	// number to each segment entering the pipeline"): the NBI computes
	// the flow-group hash in hardware, so the ticket predates the
	// variable-latency pre-processing stage it will re-order.
	item.fg = f.Pkt.Flow().Reverse().FlowGroup(t.cfg.FlowGroups)
	item.ticket = t.islands[item.fg].entry.ticket()
	t.pre.push(item)
}

// preTask: Val + Id (+ IMEM lookup stall on cache miss) + Sum + Steer for
// RX; Alloc + Head + Steer for TX (Fig. 5/6).
func (t *TOE) preTask(s *segItem) sim.Task {
	c := &t.costs
	switch s.kind {
	case segRX:
		instr := c.PreValidate + c.PreLookup + c.PreSummary + c.PreSteer
		instr += t.trace.Hit(trace.TPPreSteer)
		if t.PacketTap != nil {
			instr += t.PacketTapCost // tcpdump-style per-packet copy
		}
		var stall sim.Time
		key := uint64(s.pkt.Flow().Hash())
		if !t.preLookup.Access(key) {
			stall = t.cfg.NFP.CyclesTime(t.cfg.NFP.IMEMCycles)
			t.trace.Hit(trace.TPPreLookupMiss)
		}
		if t.cfg.SoftwareRings {
			instr += c.RingOp
		}
		if t.cfg.NetifStage {
			instr += c.Netif
		}
		return sim.TaskC(t.scale(instr)).Add(0, stall)
	case segTX:
		instr := c.PreAlloc + c.PreHeader + c.PreSteer
		if t.cfg.SoftwareRings {
			instr += c.RingOp
		}
		return sim.TaskC(t.scale(instr))
	default: // segHC: Fetch already done by ctx stage; Steer only.
		return sim.TaskC(t.scale(c.PreSteer))
	}
}

func (t *TOE) preDone(s *segItem) {
	isl := t.islands[s.fg]
	switch s.kind {
	case segRX:
		pkt := s.pkt
		// Filter non-data-path segments to the control plane (§3.1.3).
		if !pkt.TCP.IsDataPath() {
			t.toControl(pkt)
			isl.entry.skip(s.ticket)
			t.segPool.Free()
			return
		}
		// The NIC sees the flow from the sender's perspective; our
		// connection table is keyed by the local endpoint's view.
		flow := pkt.Flow().Reverse()
		conn, ok := t.connByFlow[flow]
		if !ok {
			t.toControl(pkt)
			isl.entry.skip(s.ticket)
			t.segPool.Free()
			return
		}
		s.conn = conn.ID
		s.info = tcpseg.Summarize(pkt)
		isl.entry.submit(s.ticket, s)
	case segTX, segHC:
		isl.entry.submit(s.ticket, s)
	}
}

func (t *TOE) toControl(pkt *packet.Packet) {
	t.RxToControl++
	t.trace.Hit(trace.TPPreFilterControl)
	if t.ControlRx != nil {
		cb := t.ControlRx
		t.eng.Immediately(func() { cb(pkt) })
	}
}

// protoAdmit distributes in-order segments to the connection's protocol
// worker (same connection -> same worker: atomicity without locks).
func (t *TOE) protoAdmit(isl *island, s *segItem) {
	w := isl.protos[int(s.conn)%len(isl.protos)]
	t.trace.HitN(trace.TPQProto, uint64(w.q.Len()))
	w.q.Push(s)
	w.pump()
}

func (w *protoWorker) pump() {
	for w.q.Len() > 0 && w.fpc.FreeThreads() > 0 {
		item, _ := w.q.Pop()
		task := w.taskOf(item)
		// The protocol stage is atomic (§3.1: "the only pipeline
		// hazard"): state mutations execute here, in admission order,
		// under the connection's critical section. The FPC task then
		// accounts for the time; hardware threads overlap only the
		// stall portions of *different* segments.
		w.t.protoExec(w.isl, item)
		w.fpc.Submit(task, func() { w.t.protoForward(w.isl, item) })
	}
}

func (w *protoWorker) taskOf(s *segItem) sim.Task {
	t := w.t
	c := &t.costs
	stall := w.cache.Access(uint64(s.conn))
	seqCost := c.SeqTicket + c.SeqReorder // sequencer FPCs (§3.2), charged here
	var instr int64
	switch s.kind {
	case segRX:
		instr = c.ProtoRX
		instr += t.trace.Hit(trace.TPProtoRX) + t.trace.Hit(trace.TPCritRX)
	case segTX:
		instr = c.ProtoTX
		instr += t.trace.Hit(trace.TPProtoTX) + t.trace.Hit(trace.TPCritTX)
	case segHC:
		instr = c.ProtoHC
		instr += t.trace.Hit(trace.TPProtoHC) + t.trace.Hit(trace.TPCritHC)
	}
	if t.cfg.SoftwareRings {
		instr += c.RingOp
	}
	return sim.TaskC(t.scale(instr+seqCost)).Add(0, stall)
}

// protoExec executes the real protocol logic at the atomic point, in
// admission (ticket) order. It records what happened on the segItem;
// protoForward routes the item onward when the FPC task completes.
func (t *TOE) protoExec(isl *island, s *segItem) {
	conn := t.connOrNil(s.conn)
	if conn == nil {
		s.dropped = true
		return
	}
	switch s.kind {
	case segRX:
		s.rx = tcpseg.ProcessRX(&conn.Proto, &conn.Post, &s.info, t.tsNow())
		if s.rx.FastRetransmit {
			t.FastRetx++
			if s.rx.SACKRetransmit {
				t.SACKRetx++
			}
			t.trace.Hit(trace.TPConnFastRetx)
		}
		t.countReassembly(&s.rx)
		// Delayed-ACK extension: suppress all but every Nth ACK unless
		// the segment demands attention (OOO activity, FIN, window
		// edge). ACKs that merge intervals, leave intervals outstanding,
		// or carry SACK blocks are recovery-critical — the peer's
		// selective-retransmit machinery keys off them — and are never
		// suppressed.
		if s.rx.SendAck && t.cfg.AckEvery > 1 && s.rx.WriteLen > 0 &&
			!s.rx.WasOOO && !s.rx.OOODrop && !s.rx.FinRx && !s.rx.FastRetransmit &&
			s.rx.OOOMerged == 0 && s.rx.OOOIvs == 0 && s.rx.AckSACKCnt == 0 {
			conn.ackSkip++
			if conn.ackSkip < t.cfg.AckEvery {
				s.rx.SendAck = false
				t.AcksSuppressed++
			} else {
				conn.ackSkip = 0
			}
		}
		if s.rx.SendAck {
			s.hasNBI = true
			s.nbiTicket = isl.nbi.ticket()
		}
	case segTX:
		txr, ok := tcpseg.ProcessTX(&conn.Proto, &conn.Post, t.cfg.MSS, conn.CWnd)
		if !ok {
			// Window closed between scheduling and protocol.
			s.dropped = true
			return
		}
		s.tx = txr
		s.hasNBI = true
		s.nbiTicket = isl.nbi.ticket()
	case segHC:
		s.hcOp = hcOpOf(s.hc)
		res := tcpseg.ProcessHC(&conn.Proto, &conn.Post, s.hcOp)
		if res.Reset {
			t.trace.Hit(trace.TPConnRetransmit)
		}
		if res.SendWindowUpdate {
			// Re-advertise the reopened window as a pure ACK, or the
			// sender stalls at zero window forever.
			s.rx = tcpseg.WindowUpdateAck(&conn.Proto)
			s.hasNBI = true
			s.nbiTicket = isl.nbi.ticket()
		}
	}
}

// countReassembly updates the OOO reassembly counters and the occupancy
// histogram from one RX result (shared by the pipeline's protocol stage
// and the run-to-completion ablation).
func (t *TOE) countReassembly(res *tcpseg.RXResult) {
	if res.WasOOO {
		t.OOOAccepted++
		t.trace.Hit(trace.TPConnOOO)
		if res.OOODropAvoided {
			t.OOODropsAvoided++
		}
	}
	if res.OOODrop {
		t.OOODropped++
		t.trace.Hit(trace.TPConnOOODrop)
	}
	t.OOOMerges += uint64(res.OOOMerged)
	if res.WasOOO || res.OOODrop || res.OOOMerged > 0 {
		t.OOOOccupancy.Record(int(res.OOOIvs))
	}
}

// protoForward routes a segment onward after the protocol stage's
// processing time has elapsed.
func (t *TOE) protoForward(isl *island, s *segItem) {
	if s.dropped {
		t.releaseSeg(isl, s)
		return
	}
	if t.connOrNil(s.conn) == nil {
		t.releaseSeg(isl, s)
		return
	}
	isl.post.push(s)
}

func hcOpOf(d shm.Desc) tcpseg.HCOp {
	switch d.Kind {
	case shm.DescTxBump:
		return tcpseg.HCOp{Kind: tcpseg.HCTx, Bytes: d.Bytes}
	case shm.DescRxConsume:
		return tcpseg.HCOp{Kind: tcpseg.HCRxConsumed, Bytes: d.Bytes}
	case shm.DescFin:
		return tcpseg.HCOp{Kind: tcpseg.HCFin}
	default:
		return tcpseg.HCOp{Kind: tcpseg.HCRetransmit}
	}
}

// postTask: Ack + Stamp + Stats for RX, Pos for TX, FS update for HC.
func (t *TOE) postTask(s *segItem) sim.Task {
	c := &t.costs
	var instr int64
	switch s.kind {
	case segRX:
		instr = c.PostStats + c.PostPos
		if s.rx.SendAck {
			instr += c.PostAck
			if t.cfg.UseTimestamps {
				instr += c.PostStamp
			}
		}
		if s.rx.NewInOrder > 0 || s.rx.AckedBytes > 0 || s.rx.FinRx {
			instr += c.PostNotify
		}
		instr += t.trace.Hit(trace.TPPostStats)
	case segTX:
		instr = c.PostPos + c.PostStats
	case segHC:
		instr = c.PostStats
	}
	if t.cfg.SoftwareRings {
		instr += c.RingOp
	}
	// CTM access for the post partition state.
	stall := t.stateStall()
	return sim.TaskC(t.scale(instr)).Add(0, stall)
}

func (t *TOE) stateStall() sim.Time {
	if t.cfg.FlatMemory {
		return t.cfg.NFP.CyclesTime(t.cfg.FlatMemCycles)
	}
	return t.cfg.NFP.CyclesTime(t.cfg.NFP.CTMCycles)
}

func (t *TOE) postDone(isl *island, s *segItem) {
	conn := t.connOrNil(s.conn)
	if conn == nil {
		t.releaseSeg(isl, s)
		return
	}
	switch s.kind {
	case segRX:
		t.RxSegs++
		t.RxBytes += uint64(s.info.PayloadLen)
		// Flow-scheduler update: the ACK may have opened the window.
		if tcpseg.SendableBytes(&conn.Proto, conn.CWnd) > 0 {
			t.submitFlow(conn)
		}
		t.dmaSt.push(s)
	case segTX:
		t.dmaSt.push(s)
	case segHC:
		t.HCOps++
		t.descPool.Free()
		if s.hasNBI {
			// Window-update ACK rides out through the NBI in order.
			if t.segPool.TryAlloc() {
				s.pkt = t.buildAck(conn, s)
				isl.nbi.submit(s.nbiTicket, s)
			} else {
				isl.nbi.skip(s.nbiTicket)
			}
		}
		if tcpseg.SendableBytes(&conn.Proto, conn.CWnd) > 0 || conn.Proto.TxAvail > 0 ||
			s.hc.Kind == shm.DescFin || s.hc.Kind == shm.DescRetransmit {
			// FIN and retransmit requests must reach the scheduler even
			// with an empty transmit buffer.
			t.submitFlow(conn)
		}
		t.kickTX()
	}
}

// dmaTask models descriptor construction; the PCIe/copy latency itself is
// asynchronous (the DMA engine), so the FPC only pays issue cost.
func (t *TOE) dmaTask(s *segItem) sim.Task {
	instr := t.costs.DMAIssue
	if t.cfg.SoftwareRings {
		instr += t.costs.RingOp
	}
	if t.PacketTap != nil {
		instr += t.PacketTapCost // egress logging
	}
	return sim.TaskC(t.scale(instr))
}

func (t *TOE) dmaDone(s *segItem) {
	conn := t.connOrNil(s.conn)
	isl := t.islands[s.fg]
	if conn == nil {
		t.releaseSeg(isl, s)
		return
	}
	switch s.kind {
	case segRX:
		payload := func(done func()) { done() }
		if s.rx.WriteLen > 0 {
			n := int(s.rx.WriteLen)
			payload = func(done func()) {
				t.trace.Hit(trace.TPDMAPayloadRX)
				t.xfer(n, func() {
					// One-shot: payload lands directly in the host
					// receive buffer.
					conn.RxBuf.WriteAt(s.rx.WritePos, s.pkt.Payload[s.rx.WriteOff:s.rx.WriteOff+s.rx.WriteLen])
					done()
				})
			}
		}
		payload(func() {
			// Ordering (§3.1.3): ACK and notification leave only after
			// the payload DMA completes.
			if s.rx.SendAck {
				ack := t.buildAck(conn, s)
				s.pkt = ack
				isl.nbi.submit(s.nbiTicket, s)
			} else {
				t.segPool.Free()
			}
			t.notifyHost(conn, s)
		})
	case segTX:
		n := int(s.tx.Len)
		t.trace.Hit(trace.TPDMAPayloadTX)
		t.xfer(n+64, func() { // descriptor + payload fetch
			pkt := t.buildData(conn, s)
			s.pkt = pkt
			isl.nbi.submit(s.nbiTicket, s)
		})
	}
}

// xfer moves n bytes across the host boundary: PCIe DMA on the Agilio,
// shared-memory copy on the ports.
func (t *TOE) xfer(n int, done func()) {
	if n <= 0 {
		t.eng.Immediately(done)
		return
	}
	if t.copyRes != nil {
		t.copyRes.Acquire(int64(n), t.cfg.NFP.PCIeLatency, done)
		return
	}
	t.dma.Issue(n, done)
}

// notifyHost emits context-queue notifications for newly in-order payload,
// freed transmit buffer space, and peer FINs.
func (t *TOE) notifyHost(conn *Conn, s *segItem) {
	var descs []shm.Desc
	if s.rx.NewInOrder > 0 {
		descs = append(descs, shm.Desc{Kind: shm.DescRxNotify, Conn: conn.ID, Bytes: s.rx.NewInOrder, Opaque: conn.Post.Opaque})
	}
	if s.rx.AckedBytes > 0 {
		descs = append(descs, shm.Desc{Kind: shm.DescTxFree, Conn: conn.ID, Bytes: s.rx.AckedBytes, Opaque: conn.Post.Opaque})
	}
	if s.rx.FinRx {
		descs = append(descs, shm.Desc{Kind: shm.DescFinRx, Conn: conn.ID, Opaque: conn.Post.Opaque})
	}
	for _, d := range descs {
		t.ctxSt.push(&segItem{kind: segHC, conn: conn.ID, fg: conn.fg, hc: d})
	}
}

func (t *TOE) ctxTask(s *segItem) sim.Task {
	instr := t.costs.CtxQNotify
	if t.cfg.SoftwareRings {
		instr += t.costs.RingOp
	}
	instr += t.trace.Hit(trace.TPCtxQNotify)
	return sim.TaskC(t.scale(instr))
}

func (t *TOE) ctxDone(s *segItem) {
	conn := t.connOrNil(s.conn)
	if conn == nil {
		return
	}
	d := s.hc
	t.xfer(shm.DescWireSize, func() {
		t.Notifies++
		t.trace.Hit(trace.TPDMADescriptor)
		if conn.Notify != nil {
			conn.Notify(d)
		}
	})
}

// nbiOut transmits a frame in ticket order and frees its segment buffer.
func (t *TOE) nbiOut(s *segItem) {
	pkt := s.pkt
	if pkt == nil {
		t.segPool.Free()
		return
	}
	if s.kind == segTX {
		t.TxSegs++
		t.TxBytes += uint64(s.tx.Len)
		if s.tx.RetxBytes > 0 {
			t.RetxSegs++
			t.RetxBytes += uint64(s.tx.RetxBytes)
		}
		t.txInflight--
		t.kickTX()
	} else {
		t.AcksSent++
	}
	t.sendFrame(pkt)
	t.segPool.Free()
}

func (t *TOE) sendFrame(pkt *packet.Packet) {
	if t.PacketTap != nil {
		t.PacketTap("tx", pkt)
	}
	t.iface.Send(netsim.NewFrame(pkt, t.eng.Now()))
}

// SendControlFrame transmits a control-plane segment (handshake, RST)
// directly via the MAC, bypassing the offloaded data-path — connection
// management deliberately lives outside the pipeline (§3).
func (t *TOE) SendControlFrame(pkt *packet.Packet) {
	t.eng.After(t.cfg.NFP.MMIOLatency, func() { t.sendFrame(pkt) })
}

// MAC returns the NIC's Ethernet address.
func (t *TOE) MAC() packet.EtherAddr { return t.iface.MAC }

// releaseSeg drops a segment mid-pipeline, skipping its NBI ticket so the
// reorder buffer never stalls and returning its pool resources.
func (t *TOE) releaseSeg(isl *island, s *segItem) {
	if s.hasNBI {
		isl.nbi.skip(s.nbiTicket)
	}
	switch s.kind {
	case segRX:
		t.segPool.Free()
	case segTX:
		t.segPool.Free()
		t.txInflight--
		t.kickTX()
	case segHC:
		t.descPool.Free()
	}
}

// buildAck constructs the acknowledgment segment the post stage prepared.
func (t *TOE) buildAck(conn *Conn, s *segItem) *packet.Packet {
	flags := packet.FlagACK
	if s.rx.AckECE {
		flags |= packet.FlagECE
	}
	pkt := &packet.Packet{
		Eth: packet.Ethernet{Src: t.iface.MAC, Dst: conn.Pre.PeerMAC, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: conn.Pre.LocalIP, Dst: conn.Pre.PeerIP,
		},
		TCP: packet.TCP{
			SrcPort: conn.Pre.LocalPort, DstPort: conn.Pre.RemotePort,
			Seq: s.rx.AckSeq, Ack: s.rx.AckAck, Flags: flags,
			Window: s.rx.AckWin, WScale: -1,
		},
	}
	// SACK blocks the protocol stage derived from the reassembly interval
	// set; the wire encoder fits 3 alongside timestamps, 4 otherwise.
	for i := uint8(0); i < s.rx.AckSACKCnt; i++ {
		pkt.TCP.AddSACK(packet.SACKBlock{Start: s.rx.AckSACK[i].Start, End: s.rx.AckSACK[i].End})
	}
	if t.cfg.UseTimestamps {
		pkt.TCP.HasTimestamp = true
		pkt.TCP.TSVal = t.tsNow()
		pkt.TCP.TSEcr = s.rx.EchoTS
	}
	return pkt
}

// buildData constructs a data segment, fetching real payload bytes from
// the host transmit buffer (the DMA the paper's TX pipeline performs).
func (t *TOE) buildData(conn *Conn, s *segItem) *packet.Packet {
	flags := packet.FlagACK | packet.FlagPSH
	if s.tx.FIN {
		flags |= packet.FlagFIN
		t.trace.Hit(trace.TPConnFinTx)
	}
	payload := make([]byte, s.tx.Len)
	conn.TxBuf.ReadAt(s.tx.BufPos, payload)
	pkt := &packet.Packet{
		Eth: packet.Ethernet{Src: t.iface.MAC, Dst: conn.Pre.PeerMAC, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: conn.Pre.LocalIP, Dst: conn.Pre.PeerIP,
		},
		TCP: packet.TCP{
			SrcPort: conn.Pre.LocalPort, DstPort: conn.Pre.RemotePort,
			Seq: s.tx.Seq, Ack: s.tx.Ack, Flags: flags,
			Window: s.tx.Win, WScale: -1,
		},
		Payload: payload,
	}
	if t.cfg.UseTimestamps {
		pkt.TCP.HasTimestamp = true
		pkt.TCP.TSVal = t.tsNow()
		pkt.TCP.TSEcr = s.tx.EchoTS
	}
	return pkt
}

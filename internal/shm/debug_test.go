//go:build flexdebug

package shm

import "testing"

// mustPanic runs f and fails the test if it completes without panicking.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestFreelistDoubleReleasePanics(t *testing.T) {
	type obj struct{ n int }
	var fl Freelist[obj]
	x := &obj{n: 1}
	fl.Put(x)
	mustPanic(t, "double Put", func() { fl.Put(x) })
}

func TestFreelistReacquireIsClean(t *testing.T) {
	type obj struct{ n int }
	var fl Freelist[obj]
	x := &obj{}
	fl.Put(x)
	if got := fl.Get(); got != x {
		t.Fatalf("Get = %p, want %p", got, x)
	}
	fl.Put(x) // legal again after the Get
	if got := fl.Get(); got != x {
		t.Fatalf("Get = %p, want %p", got, x)
	}
}

func TestSlabPoisonsReleasedBuffers(t *testing.T) {
	s := NewSlab(64, 4)
	b := s.Get()
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0x11
	}
	s.Put(b)
	for i, v := range b {
		if v != PoisonByte {
			t.Fatalf("released slab byte %d = %#x, want poison %#x", i, v, PoisonByte)
		}
	}
}

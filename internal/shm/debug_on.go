//go:build flexdebug

package shm

import "fmt"

// Debug reports whether the flexdebug build tag is active.
const Debug = true

// PoisonByte fills released pooled buffers under flexdebug, so stale
// reads see deterministic garbage instead of plausible old contents and
// writes through stale references are caught at the next Get.
const PoisonByte = 0xDB

// poolCheck tracks which objects are resident in a freelist and panics
// when the same pointer is Put twice without an intervening Get — the
// two-owners bug the poolown pass hunts statically, caught here at
// runtime for the flows static analysis cannot follow.
type poolCheck[T any] struct {
	resident map[*T]struct{}
}

func (c *poolCheck[T]) got(x *T) {
	delete(c.resident, x)
}

func (c *poolCheck[T]) put(x *T) {
	if c.resident == nil {
		c.resident = make(map[*T]struct{})
	}
	if _, dup := c.resident[x]; dup {
		panic(fmt.Sprintf("shm: double release of %T %p", x, x))
	}
	c.resident[x] = struct{}{}
}

func slabPoison(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = PoisonByte
	}
}

package shm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPayloadBufWrap(t *testing.T) {
	b := NewPayloadBuf(16)
	data := []byte("abcdefghij") // 10 bytes at pos 12: wraps
	b.WriteAt(12, data)
	out := make([]byte, 10)
	b.ReadAt(12, out)
	if !bytes.Equal(out, data) {
		t.Fatalf("got %q", out)
	}
}

func TestPayloadBufPositionsAreAbsolute(t *testing.T) {
	b := NewPayloadBuf(8)
	b.WriteAt(0, []byte("01234567"))
	b.WriteAt(8, []byte("ab")) // absolute pos 8 == offset 0
	out := make([]byte, 2)
	b.ReadAt(0, out)
	if string(out) != "ab" {
		t.Fatalf("got %q", out)
	}
}

func TestPayloadBufNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size 12")
		}
	}()
	NewPayloadBuf(12)
}

func TestPayloadBufPropertyRoundTrip(t *testing.T) {
	buf := NewPayloadBuf(1024)
	f := func(pos uint32, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		buf.WriteAt(pos, data)
		out := make([]byte, len(data))
		buf.ReadAt(pos, out)
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool("segs", 3)
	for i := 0; i < 3; i++ {
		if !p.TryAlloc() {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if p.TryAlloc() {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if p.Failures != 1 {
		t.Fatalf("failures = %d", p.Failures)
	}
	p.Free()
	if !p.TryAlloc() {
		t.Fatal("alloc after free failed")
	}
	if p.PeakInUse != 3 {
		t.Fatalf("peak = %d", p.PeakInUse)
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewPool("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not caught")
		}
	}()
	p.Free()
}

func TestPoolInvariantProperty(t *testing.T) {
	// Property: InUse is always in [0, cap] under any alloc/free pattern.
	f := func(ops []bool) bool {
		p := NewPool("q", 8)
		for _, alloc := range ops {
			if alloc {
				p.TryAlloc()
			} else if p.InUse() > 0 {
				p.Free()
			}
			if p.InUse() < 0 || p.InUse() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlabCarveAndRecycle(t *testing.T) {
	s := NewSlab(128, 4)
	a := s.Get()
	if cap(a) != 128 || len(a) != 0 {
		t.Fatalf("Get: len=%d cap=%d", len(a), cap(a))
	}
	// Buffers from one block are contiguous (cache-adjacent carving).
	b := s.Get()
	if &a[:1][0] == &b[:1][0] {
		t.Fatal("distinct buffers alias")
	}
	if s.Blocks != 1 {
		t.Fatalf("Blocks = %d after two gets of four-unit block", s.Blocks)
	}
	s.Put(a)
	c := s.Get()
	if &c[:1][0] != &a[:1][0] {
		t.Fatal("freelist did not recycle the returned buffer")
	}
	// A fifth distinct buffer forces a second block.
	s.Get()
	s.Get()
	s.Get()
	if s.Blocks != 2 {
		t.Fatalf("Blocks = %d after exhausting the first block", s.Blocks)
	}
	// Foreign-class buffers are dropped, not pooled.
	s.Put(make([]byte, 64))
	if s.Puts != 1 {
		t.Fatalf("Puts = %d, foreign buffer was accepted", s.Puts)
	}
}

func TestPayloadBufSlices(t *testing.T) {
	b := NewPayloadBuf(16)
	for i := 0; i < 16; i++ {
		b.WriteAt(uint32(i), []byte{byte(i)})
	}
	// Fully within the ring: one slice, zero copy.
	a, c := b.Slices(2, 5)
	if len(a) != 5 || c != nil || a[0] != 2 || a[4] != 6 {
		t.Fatalf("contiguous view wrong: %v %v", a, c)
	}
	// Writes through the view land in the ring.
	a[0] = 0xEE
	out := make([]byte, 1)
	b.ReadAt(2, out)
	if out[0] != 0xEE {
		t.Fatal("view is not a window into the buffer")
	}
	// Wrapping: two slices covering [14, 19) = ring[14:16] + ring[0:3].
	a, c = b.Slices(14, 5)
	if len(a) != 2 || len(c) != 3 || a[0] != 14 || c[0] != 0 {
		t.Fatalf("wrapped view wrong: %v %v", a, c)
	}
	// Positions are absolute offsets: wrapping the position maps mod size.
	a, _ = b.Slices(32+2, 1)
	if a[0] != 0xEE {
		t.Fatal("absolute position not masked")
	}
	// Empty view.
	if a, c = b.Slices(3, 0); a != nil || c != nil {
		t.Fatal("empty view not nil")
	}
	// Oversized views are a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("view larger than the buffer did not panic")
		}
	}()
	b.Slices(0, 17)
}

//go:build !flexdebug

package shm

// Debug reports whether the flexdebug build tag is active.
const Debug = false

// poolCheck is the release-build no-op of the flexdebug double-release
// tracker: zero-size, so Freelist stays a bare slice header and Get/Put
// compile down to the slice ops alone.
type poolCheck[T any] struct{}

func (poolCheck[T]) got(x *T) {}
func (poolCheck[T]) put(x *T) {}

func slabPoison(b []byte) {}

// Package shm models the shared-memory structures at the host/NIC
// boundary (§3, Fig. 2): per-socket payload buffers in host memory that
// the data-path DMAs into directly (one-shot offload: the NIC never
// buffers segments), context-queue descriptors, and the bounded NIC-side
// descriptor pools whose exhaustion flow-controls host interaction
// (§3.1.1).
package shm

import "fmt"

// PayloadBuf is a power-of-two circular byte buffer in host memory: a
// socket's RX or TX payload buffer (PAYLOAD-BUF). Positions are absolute
// byte offsets; the buffer wraps them.
type PayloadBuf struct {
	data []byte
	mask uint32
}

// NewPayloadBuf allocates a buffer. size must be a power of two.
func NewPayloadBuf(size uint32) *PayloadBuf {
	if size == 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("shm: payload buffer size %d not a power of two", size))
	}
	return &PayloadBuf{data: make([]byte, size), mask: size - 1}
}

// Size returns the buffer capacity.
func (b *PayloadBuf) Size() uint32 { return uint32(len(b.data)) }

// WriteAt copies p into the buffer starting at pos, wrapping as needed.
func (b *PayloadBuf) WriteAt(pos uint32, p []byte) {
	start := pos & b.mask
	n := copy(b.data[start:], p)
	if n < len(p) {
		copy(b.data, p[n:])
	}
}

// ReadAt copies len(p) bytes from the buffer starting at pos.
func (b *PayloadBuf) ReadAt(pos uint32, p []byte) {
	start := pos & b.mask
	n := copy(p, b.data[start:])
	if n < len(p) {
		copy(p[n:], b.data)
	}
}

// Slices returns the window [pos, pos+n) as up to two in-place slices:
// the zero-copy view the libTOE socket layer hands applications. The
// second slice is non-nil only when the window wraps the buffer end.
// The slices alias the buffer — they stay valid only until the region is
// recycled (receive: consumed; transmit: acknowledged and rewritten).
// n must not exceed the buffer size.
func (b *PayloadBuf) Slices(pos, n uint32) (a, c []byte) {
	if n > uint32(len(b.data)) {
		panic(fmt.Sprintf("shm: view of %d bytes exceeds %d-byte payload buffer", n, len(b.data)))
	}
	if n == 0 {
		return nil, nil
	}
	start := pos & b.mask
	if start+n <= uint32(len(b.data)) {
		return b.data[start : start+n], nil
	}
	return b.data[start:], b.data[:start+n-uint32(len(b.data))]
}

// DescKind discriminates context-queue descriptors.
type DescKind uint8

const (
	// Host -> NIC (the HC workflow, Fig. 4).
	DescTxBump     DescKind = iota // application appended Bytes to the TX buffer
	DescRxConsume                  // application consumed Bytes from the RX buffer
	DescFin                        // application closed the connection
	DescRetransmit                 // control plane requests go-back-N (timeout)

	// NIC -> host (application notifications, Fig. 6).
	DescRxNotify // Bytes of new in-order payload available
	DescTxFree   // Bytes of TX buffer space freed by acknowledgment
	DescFinRx    // peer closed its direction
	DescReset    // connection torn down
)

// Desc is one context-queue entry. 16 bytes on the wire, matching the
// scalable PCIe queue design the paper adopts [44].
type Desc struct {
	Kind   DescKind
	Conn   uint32 // connection index
	Bytes  uint32
	Opaque uint64 // application connection identifier (RX notify)
}

// DescWireSize is the DMA size of one descriptor.
const DescWireSize = 16

// Pool is a bounded NIC-memory descriptor/segment-buffer pool. Allocation
// failure is the data-path's backpressure mechanism: processing stops and
// retries (§3.1.1).
type Pool struct {
	name string
	free int
	cap  int

	Allocs    uint64
	Failures  uint64
	PeakInUse int
}

// NewPool creates a pool with the given capacity.
func NewPool(name string, capacity int) *Pool {
	if capacity <= 0 {
		panic("shm: pool capacity must be positive")
	}
	return &Pool{name: name, free: capacity, cap: capacity}
}

// TryAlloc takes one buffer, reporting false when the pool is exhausted.
func (p *Pool) TryAlloc() bool {
	if p.free == 0 {
		p.Failures++
		return false
	}
	p.free--
	p.Allocs++
	if used := p.cap - p.free; used > p.PeakInUse {
		p.PeakInUse = used
	}
	return true
}

// Free returns one buffer.
func (p *Pool) Free() {
	if p.free >= p.cap {
		panic("shm: pool double free on " + p.name)
	}
	p.free++
}

// InUse returns the number of allocated buffers.
func (p *Pool) InUse() int { return p.cap - p.free }

// Freelist recycles pointers to pooled objects: the pop-last/nil-slot
// mechanics shared by every object pool on the zero-allocation hot path
// (packets, frames, segItems, FPC task records, DMA transactions). The
// caller owns reset semantics; Get returns nil when empty so each pool
// constructs its own fresh object. Slots are nilled on Get so the
// freelist never retains a reference to an object in flight.
type Freelist[T any] struct {
	items []*T
	check poolCheck[T] // zero-size unless built with -tags flexdebug
}

// Get pops the most recently returned object, or nil when empty.
func (f *Freelist[T]) Get() *T {
	n := len(f.items)
	if n == 0 {
		return nil
	}
	x := f.items[n-1]
	f.items[n-1] = nil
	f.items = f.items[:n-1]
	f.check.got(x)
	return x
}

// Put returns an object to the freelist. The caller must have dropped
// every other reference (and reset the object, per its pool's contract).
func (f *Freelist[T]) Put(x *T) {
	f.check.put(x)
	f.items = append(f.items, x)
}

// PopRing advances a slice-backed FIFO ring's head past one consumed
// slot (zeroing it so the ring retains no reference), compacting the
// backing slice when over half is dead so the ring stays O(outstanding)
// under sustained load instead of growing with every push. Shared by the
// app-layer request/response queues and libTOE's per-socket notification
// FIFO.
func PopRing[T any](s []T, head int) ([]T, int) {
	var zero T
	s[head] = zero
	head++
	if head == len(s) {
		return s[:0], 0
	}
	if head > 32 && head*2 >= len(s) {
		n := copy(s, s[head:])
		return s[:n], 0
	}
	return s, head
}

// Slab is a grow-only arena of fixed-size byte buffers: payload staging
// for the zero-allocation data path. Buffers are carved class-size at a
// time from large blocks (one make per unitsPerBlock buffers) and recycled
// through a freelist, so steady-state Get/Put performs no heap allocation
// and consecutive buffers stay cache-adjacent, like the CTM packet-buffer
// SRAM they stand in for.
type Slab struct {
	class int
	unit  int // buffers carved per block
	block []byte
	free  [][]byte

	// Statistics.
	Blocks uint64
	Gets   uint64
	Puts   uint64
}

// NewSlab creates a slab handing out buffers of the given class size,
// growing unitsPerBlock buffers at a time.
func NewSlab(class, unitsPerBlock int) *Slab {
	if class <= 0 || unitsPerBlock <= 0 {
		panic("shm: bad slab geometry")
	}
	return &Slab{class: class, unit: unitsPerBlock}
}

// Class returns the buffer size this slab serves.
func (s *Slab) Class() int { return s.class }

// Get returns a zero-length buffer with capacity Class. The caller owns it
// until Put.
func (s *Slab) Get() []byte {
	s.Gets++
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return b
	}
	if len(s.block) < s.class {
		s.block = make([]byte, s.class*s.unit)
		s.Blocks++
	}
	b := s.block[0:0:s.class]
	s.block = s.block[s.class:]
	return b
}

// Put returns a buffer to the freelist. Buffers of a different class are
// dropped (left to the garbage collector).
func (s *Slab) Put(b []byte) {
	if cap(b) != s.class {
		return
	}
	s.Puts++
	slabPoison(b)
	s.free = append(s.free, b[0:0:s.class])
}

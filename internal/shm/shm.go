// Package shm models the shared-memory structures at the host/NIC
// boundary (§3, Fig. 2): per-socket payload buffers in host memory that
// the data-path DMAs into directly (one-shot offload: the NIC never
// buffers segments), context-queue descriptors, and the bounded NIC-side
// descriptor pools whose exhaustion flow-controls host interaction
// (§3.1.1).
package shm

import "fmt"

// PayloadBuf is a power-of-two circular byte buffer in host memory: a
// socket's RX or TX payload buffer (PAYLOAD-BUF). Positions are absolute
// byte offsets; the buffer wraps them.
type PayloadBuf struct {
	data []byte
	mask uint32
}

// NewPayloadBuf allocates a buffer. size must be a power of two.
func NewPayloadBuf(size uint32) *PayloadBuf {
	if size == 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("shm: payload buffer size %d not a power of two", size))
	}
	return &PayloadBuf{data: make([]byte, size), mask: size - 1}
}

// Size returns the buffer capacity.
func (b *PayloadBuf) Size() uint32 { return uint32(len(b.data)) }

// WriteAt copies p into the buffer starting at pos, wrapping as needed.
func (b *PayloadBuf) WriteAt(pos uint32, p []byte) {
	start := pos & b.mask
	n := copy(b.data[start:], p)
	if n < len(p) {
		copy(b.data, p[n:])
	}
}

// ReadAt copies len(p) bytes from the buffer starting at pos.
func (b *PayloadBuf) ReadAt(pos uint32, p []byte) {
	start := pos & b.mask
	n := copy(p, b.data[start:])
	if n < len(p) {
		copy(p[n:], b.data)
	}
}

// DescKind discriminates context-queue descriptors.
type DescKind uint8

const (
	// Host -> NIC (the HC workflow, Fig. 4).
	DescTxBump     DescKind = iota // application appended Bytes to the TX buffer
	DescRxConsume                  // application consumed Bytes from the RX buffer
	DescFin                        // application closed the connection
	DescRetransmit                 // control plane requests go-back-N (timeout)

	// NIC -> host (application notifications, Fig. 6).
	DescRxNotify // Bytes of new in-order payload available
	DescTxFree   // Bytes of TX buffer space freed by acknowledgment
	DescFinRx    // peer closed its direction
	DescReset    // connection torn down
)

// Desc is one context-queue entry. 16 bytes on the wire, matching the
// scalable PCIe queue design the paper adopts [44].
type Desc struct {
	Kind   DescKind
	Conn   uint32 // connection index
	Bytes  uint32
	Opaque uint64 // application connection identifier (RX notify)
}

// DescWireSize is the DMA size of one descriptor.
const DescWireSize = 16

// Pool is a bounded NIC-memory descriptor/segment-buffer pool. Allocation
// failure is the data-path's backpressure mechanism: processing stops and
// retries (§3.1.1).
type Pool struct {
	name string
	free int
	cap  int

	Allocs    uint64
	Failures  uint64
	PeakInUse int
}

// NewPool creates a pool with the given capacity.
func NewPool(name string, capacity int) *Pool {
	if capacity <= 0 {
		panic("shm: pool capacity must be positive")
	}
	return &Pool{name: name, free: capacity, cap: capacity}
}

// TryAlloc takes one buffer, reporting false when the pool is exhausted.
func (p *Pool) TryAlloc() bool {
	if p.free == 0 {
		p.Failures++
		return false
	}
	p.free--
	p.Allocs++
	if used := p.cap - p.free; used > p.PeakInUse {
		p.PeakInUse = used
	}
	return true
}

// Free returns one buffer.
func (p *Pool) Free() {
	if p.free >= p.cap {
		panic("shm: pool double free on " + p.name)
	}
	p.free++
}

// InUse returns the number of allocated buffers.
func (p *Pool) InUse() int { return p.cap - p.free }

//go:build flexdebug

package packet

import "testing"

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestPacketDoubleReleasePanics(t *testing.T) {
	p := Get()
	Release(p)
	mustPanic(t, "double Release", func() { Release(p) })
	// Drain the poisoned entry so later tests start clean.
	_ = Get()
}

func TestPacketWriteAfterReleaseCaught(t *testing.T) {
	p := Get()
	payload := p.GrowPayload(32)
	Release(p)
	// Stale write through the view handed out before Release.
	payload[5] = 0xAA
	mustPanic(t, "Get after write-after-release", func() { _ = Get() })
}

func TestPacketStaleReadSeesPoison(t *testing.T) {
	p := Get()
	payload := p.GrowPayload(16)
	for i := range payload {
		payload[i] = byte(i)
	}
	Release(p)
	for i, v := range payload {
		if v != 0xDB {
			t.Fatalf("stale payload byte %d = %#x, want poison 0xDB", i, v)
		}
	}
	// Reacquire (contents untouched, so the check passes) and restore the
	// pool to a clean state.
	Release(Get())
}

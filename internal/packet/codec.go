package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Packet bundles decoded layers with the TCP payload. Nil layer pointers
// mean the layer is absent.
//
// Packets on the simulated wire are single-owner objects: building and
// sending one transfers it to the fabric, and whoever terminates its
// journey (the consuming stack, or a drop point) calls Release exactly
// once. See Get/Release in pool.go for the recycling contract.
type Packet struct {
	Eth     Ethernet
	VLAN    *VLAN
	IP      IPv4
	TCP     TCP
	Payload []byte

	// buf is the retained payload backing of a pooled packet (GrowPayload
	// carves Payload from it); pooled marks packets obtained from a Pool
	// so Release is a safe no-op on ordinary &Packet{} literals; pool is
	// the shard pool that currently owns the packet (re-pointed by
	// Pool.Adopt when a frame crosses a shard boundary).
	buf    []byte
	pooled bool
	pool   *Pool
}

// Decode errors.
var (
	ErrTruncated    = errors.New("packet: truncated")
	ErrNotIPv4      = errors.New("packet: not IPv4")
	ErrNotTCP       = errors.New("packet: not TCP")
	ErrBadIPHeader  = errors.New("packet: bad IPv4 header")
	ErrBadTCPHeader = errors.New("packet: bad TCP header")
)

// Decode parses an Ethernet frame carrying IPv4/TCP. It does not verify
// checksums; use VerifyChecksums for that.
func Decode(data []byte) (*Packet, error) {
	p := &Packet{}
	if err := p.DecodeInto(data); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto parses into an existing Packet, avoiding allocation on hot
// paths (the XDP stage re-decodes after programs run).
func (p *Packet) DecodeInto(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(p.Eth.Dst[:], data[0:6])
	copy(p.Eth.Src[:], data[6:12])
	p.Eth.EtherType = binary.BigEndian.Uint16(data[12:14])
	rest := data[EthernetHeaderLen:]
	p.VLAN = nil

	if p.Eth.EtherType == EtherTypeVLAN {
		if len(rest) < VLANTagLen {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		p.VLAN = &VLAN{
			Priority:  uint8(tci >> 13),
			ID:        tci & 0x0fff,
			EtherType: binary.BigEndian.Uint16(rest[2:4]),
		}
		rest = rest[VLANTagLen:]
		if p.VLAN.EtherType != EtherTypeIPv4 {
			return ErrNotIPv4
		}
	} else if p.Eth.EtherType != EtherTypeIPv4 {
		return ErrNotIPv4
	}

	if len(rest) < IPv4HeaderLen {
		return ErrTruncated
	}
	vihl := rest[0]
	if vihl>>4 != 4 {
		return ErrBadIPHeader
	}
	ihl := int(vihl&0xf) * 4
	if ihl < IPv4HeaderLen || len(rest) < ihl {
		return ErrBadIPHeader
	}
	p.IP.TOS = rest[1]
	p.IP.Length = binary.BigEndian.Uint16(rest[2:4])
	p.IP.ID = binary.BigEndian.Uint16(rest[4:6])
	p.IP.TTL = rest[8]
	p.IP.Protocol = rest[9]
	p.IP.Checksum = binary.BigEndian.Uint16(rest[10:12])
	p.IP.Src = IPv4Addr(binary.BigEndian.Uint32(rest[12:16]))
	p.IP.Dst = IPv4Addr(binary.BigEndian.Uint32(rest[16:20]))
	if p.IP.Protocol != ProtoTCP {
		return ErrNotTCP
	}
	if int(p.IP.Length) < ihl || int(p.IP.Length) > len(rest) {
		return ErrBadIPHeader
	}
	seg := rest[ihl:p.IP.Length]

	if len(seg) < TCPHeaderLen {
		return ErrTruncated
	}
	t := &p.TCP
	*t = TCP{WScale: -1}
	t.SrcPort = binary.BigEndian.Uint16(seg[0:2])
	t.DstPort = binary.BigEndian.Uint16(seg[2:4])
	t.Seq = binary.BigEndian.Uint32(seg[4:8])
	t.Ack = binary.BigEndian.Uint32(seg[8:12])
	t.DataOffset = seg[12] >> 4
	t.Flags = seg[13]
	t.Window = binary.BigEndian.Uint16(seg[14:16])
	t.Checksum = binary.BigEndian.Uint16(seg[16:18])
	t.Urgent = binary.BigEndian.Uint16(seg[18:20])
	hdrLen := int(t.DataOffset) * 4
	if hdrLen < TCPHeaderLen || hdrLen > len(seg) {
		return ErrBadTCPHeader
	}
	if err := decodeTCPOptions(t, seg[TCPHeaderLen:hdrLen]); err != nil {
		return err
	}
	p.Payload = seg[hdrLen:]
	return nil
}

func decodeTCPOptions(t *TCP, opts []byte) error {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEnd:
			return nil
		case OptNOP:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return ErrBadTCPHeader
		}
		olen := int(opts[1])
		if olen < 2 || olen > len(opts) {
			return ErrBadTCPHeader
		}
		body := opts[2:olen]
		switch kind {
		case OptMSS:
			if len(body) == 2 {
				t.MSS = binary.BigEndian.Uint16(body)
			}
		case OptTimestamp:
			if len(body) == 8 {
				t.HasTimestamp = true
				t.TSVal = binary.BigEndian.Uint32(body[0:4])
				t.TSEcr = binary.BigEndian.Uint32(body[4:8])
			}
		case OptSACKPerm:
			t.SACKPerm = true
		case OptSACK:
			for i := 0; i+8 <= len(body) && t.NumSACK < MaxSACKBlocks; i += 8 {
				t.SACKBlocks[t.NumSACK] = SACKBlock{
					Start: binary.BigEndian.Uint32(body[i : i+4]),
					End:   binary.BigEndian.Uint32(body[i+4 : i+8]),
				}
				t.NumSACK++
			}
		case OptWScale:
			if len(body) == 1 {
				t.WScale = int8(body[0])
			}
		}
		opts = opts[olen:]
	}
	return nil
}

// baseOptionsLen is the unpadded length of all options except SACK.
func (t *TCP) baseOptionsLen() int {
	n := 0
	if t.MSS != 0 {
		n += 4
	}
	if t.SACKPerm {
		n += 2
	}
	if t.WScale >= 0 {
		n += 3
	}
	if t.HasTimestamp {
		n += 10
	}
	return n
}

// sackFit returns how many SACK blocks the remaining option space holds
// (RFC 2018: 4 alone, 3 alongside the timestamp option). The encoder
// truncates from the tail, so callers place the most important block
// first.
func (t *TCP) sackFit() int {
	if t.NumSACK == 0 {
		return 0
	}
	fit := (TCPMaxOptionLen - t.baseOptionsLen() - 2) / 8
	if fit < 0 {
		fit = 0
	}
	if fit > int(t.NumSACK) {
		fit = int(t.NumSACK)
	}
	return fit
}

// tcpOptionsLen returns the encoded (padded) option length for t.
func (t *TCP) tcpOptionsLen() int {
	n := t.baseOptionsLen()
	if fit := t.sackFit(); fit > 0 {
		n += 2 + 8*fit
	}
	return (n + 3) &^ 3 // pad to 32-bit boundary
}

// SerializeOptions controls Serialize behaviour, mirroring gopacket.
type SerializeOptions struct {
	// FixLengths recomputes the IPv4 total length and TCP data offset.
	FixLengths bool
	// ComputeChecksums fills in the IPv4 header checksum and the TCP
	// checksum (with pseudo-header).
	ComputeChecksums bool
}

// Serialize encodes the packet into a freshly allocated frame.
func (p *Packet) Serialize(opts SerializeOptions) []byte {
	optLen := p.TCP.tcpOptionsLen()
	tcpLen := TCPHeaderLen + optLen + len(p.Payload)
	ipLen := IPv4HeaderLen + tcpLen
	frameLen := EthernetHeaderLen + ipLen
	if p.VLAN != nil {
		frameLen += VLANTagLen
	}
	buf := make([]byte, frameLen)
	p.SerializeTo(buf, opts)
	return buf
}

// SerializeTo encodes into buf, which must be exactly WireLen() bytes. It
// returns the number of bytes written.
func (p *Packet) SerializeTo(buf []byte, opts SerializeOptions) int {
	optLen := p.TCP.tcpOptionsLen()
	tcpLen := TCPHeaderLen + optLen + len(p.Payload)
	ipLen := IPv4HeaderLen + tcpLen

	copy(buf[0:6], p.Eth.Dst[:])
	copy(buf[6:12], p.Eth.Src[:])
	off := EthernetHeaderLen
	if p.VLAN != nil {
		binary.BigEndian.PutUint16(buf[12:14], EtherTypeVLAN)
		tci := uint16(p.VLAN.Priority)<<13 | p.VLAN.ID&0x0fff
		binary.BigEndian.PutUint16(buf[14:16], tci)
		binary.BigEndian.PutUint16(buf[16:18], EtherTypeIPv4)
		off += VLANTagLen
	} else {
		et := p.Eth.EtherType
		if et == 0 || opts.FixLengths {
			et = EtherTypeIPv4
		}
		binary.BigEndian.PutUint16(buf[12:14], et)
	}

	ip := buf[off:]
	ip[0] = 0x45
	ip[1] = p.IP.TOS
	length := p.IP.Length
	if opts.FixLengths || length == 0 {
		length = uint16(ipLen)
	}
	binary.BigEndian.PutUint16(ip[2:4], length)
	binary.BigEndian.PutUint16(ip[4:6], p.IP.ID)
	ip[6], ip[7] = 0x40, 0 // DF, no fragment offset
	ttl := p.IP.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = ProtoTCP
	ip[10], ip[11] = 0, 0
	binary.BigEndian.PutUint32(ip[12:16], uint32(p.IP.Src))
	binary.BigEndian.PutUint32(ip[16:20], uint32(p.IP.Dst))
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))
	} else {
		binary.BigEndian.PutUint16(ip[10:12], p.IP.Checksum)
	}

	seg := ip[IPv4HeaderLen : IPv4HeaderLen+tcpLen]
	t := &p.TCP
	binary.BigEndian.PutUint16(seg[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], t.DstPort)
	binary.BigEndian.PutUint32(seg[4:8], t.Seq)
	binary.BigEndian.PutUint32(seg[8:12], t.Ack)
	dataOff := t.DataOffset
	if opts.FixLengths || dataOff == 0 {
		dataOff = uint8((TCPHeaderLen + optLen) / 4)
	}
	seg[12] = dataOff << 4
	seg[13] = t.Flags
	binary.BigEndian.PutUint16(seg[14:16], t.Window)
	seg[16], seg[17] = 0, 0
	binary.BigEndian.PutUint16(seg[18:20], t.Urgent)
	encodeTCPOptions(t, seg[TCPHeaderLen:TCPHeaderLen+optLen])
	copy(seg[TCPHeaderLen+optLen:], p.Payload)
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(seg[16:18], tcpChecksum(p.IP.Src, p.IP.Dst, seg))
	} else {
		binary.BigEndian.PutUint16(seg[16:18], t.Checksum)
	}
	return off + ipLen
}

func encodeTCPOptions(t *TCP, buf []byte) {
	i := 0
	if t.MSS != 0 {
		buf[i] = OptMSS
		buf[i+1] = 4
		binary.BigEndian.PutUint16(buf[i+2:], t.MSS)
		i += 4
	}
	if t.SACKPerm {
		buf[i] = OptSACKPerm
		buf[i+1] = 2
		i += 2
	}
	if t.WScale >= 0 {
		buf[i] = OptWScale
		buf[i+1] = 3
		buf[i+2] = byte(t.WScale)
		i += 3
	}
	if t.HasTimestamp {
		buf[i] = OptTimestamp
		buf[i+1] = 10
		binary.BigEndian.PutUint32(buf[i+2:], t.TSVal)
		binary.BigEndian.PutUint32(buf[i+6:], t.TSEcr)
		i += 10
	}
	if fit := t.sackFit(); fit > 0 {
		buf[i] = OptSACK
		buf[i+1] = byte(2 + 8*fit)
		i += 2
		for k := 0; k < fit; k++ {
			binary.BigEndian.PutUint32(buf[i:], t.SACKBlocks[k].Start)
			binary.BigEndian.PutUint32(buf[i+4:], t.SACKBlocks[k].End)
			i += 8
		}
	}
	for ; i < len(buf); i++ {
		buf[i] = OptNOP
	}
}

// WireLen returns the frame's on-wire size in bytes.
func (p *Packet) WireLen() int {
	n := EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen + p.TCP.tcpOptionsLen() + len(p.Payload)
	if p.VLAN != nil {
		n += VLANTagLen
	}
	return n
}

// Flow returns the packet's 4-tuple.
func (p *Packet) Flow() Flow {
	return Flow{SrcIP: p.IP.Src, DstIP: p.IP.Dst, SrcPort: p.TCP.SrcPort, DstPort: p.TCP.DstPort}
}

// ipChecksum computes the IPv4 header checksum over hdr (checksum field
// must be zero).
func ipChecksum(hdr []byte) uint16 {
	return onesComplement(sum16(hdr, 0))
}

// tcpChecksum computes the TCP checksum including the IPv4 pseudo-header.
// The checksum field in seg must be zero.
func tcpChecksum(src, dst IPv4Addr, seg []byte) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:], uint32(src))
	binary.BigEndian.PutUint32(pseudo[4:], uint32(dst))
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)))
	s := sum16(pseudo[:], 0)
	s = sum16(seg, s)
	return onesComplement(s)
}

func sum16(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func onesComplement(s uint32) uint16 {
	for s>>16 != 0 {
		s = s&0xffff + s>>16
	}
	return ^uint16(s)
}

// VerifyChecksums reports whether the frame's IPv4 and TCP checksums are
// valid.
func VerifyChecksums(frame []byte) error {
	var p Packet
	if err := p.DecodeInto(frame); err != nil {
		return err
	}
	off := EthernetHeaderLen
	if p.VLAN != nil {
		off += VLANTagLen
	}
	ip := frame[off:]
	if got := sum16(ip[:IPv4HeaderLen], 0); onesComplement(got) != 0 {
		return fmt.Errorf("packet: bad IPv4 checksum")
	}
	seg := ip[IPv4HeaderLen:p.IP.Length]
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:], uint32(p.IP.Src))
	binary.BigEndian.PutUint32(pseudo[4:], uint32(p.IP.Dst))
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)))
	s := sum16(pseudo[:], 0)
	s = sum16(seg, s)
	if onesComplement(s) != 0 {
		return fmt.Errorf("packet: bad TCP checksum")
	}
	return nil
}

// IncrementalChecksumAdjust updates an Internet checksum for a field that
// changed from old to new (RFC 1624). The splicing module uses this to
// patch checksums without recomputation, exactly as the NFP's CRC/checksum
// unit would.
func IncrementalChecksumAdjust(sum uint16, old, new uint32) uint16 {
	// HC' = ~(~HC + ~m + m') per RFC 1624 eqn. 3, applied per 16-bit half.
	acc := uint32(^sum) & 0xffff
	acc += uint32(^uint16(old>>16)) & 0xffff
	acc += uint32(^uint16(old)) & 0xffff
	acc += uint32(uint16(new >> 16))
	acc += uint32(uint16(new))
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

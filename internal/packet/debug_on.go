//go:build flexdebug

package packet

import (
	"fmt"

	"flextoe/internal/shm"
)

// poisonPayload fills the released packet's retained payload backing with
// the poison byte. A stale Payload slice held past Release now reads
// deterministic garbage, and any write through it is caught by checkPoison
// when the pool hands the packet out again.
func poisonPayload(p *Packet) {
	buf := p.buf[:cap(p.buf)]
	for i := range buf {
		buf[i] = shm.PoisonByte
	}
}

// checkPoison verifies the payload backing is still fully poisoned at Get:
// a dirty byte means someone wrote through a Payload slice they no longer
// owned.
func checkPoison(p *Packet) {
	buf := p.buf[:cap(p.buf)]
	for i, b := range buf {
		if b != shm.PoisonByte {
			panic(fmt.Sprintf("packet: write-after-release detected: payload byte %d of %p is %#x, want poison %#x",
				i, p, b, shm.PoisonByte))
		}
	}
}

package packet

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Eth: Ethernet{
			Dst:       MAC(0x02, 0, 0, 0, 0, 2),
			Src:       MAC(0x02, 0, 0, 0, 0, 1),
			EtherType: EtherTypeIPv4,
		},
		IP: IPv4{
			TTL:      64,
			Protocol: ProtoTCP,
			Src:      IP(10, 0, 0, 1),
			Dst:      IP(10, 0, 0, 2),
		},
		TCP: TCP{
			SrcPort:      40000,
			DstPort:      11211,
			Seq:          12345,
			Ack:          67890,
			Flags:        FlagACK | FlagPSH,
			Window:       65535,
			HasTimestamp: true,
			TSVal:        111,
			TSEcr:        222,
			WScale:       -1,
		},
		Payload: []byte("hello flextoe"),
	}
}

func TestSerializeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if len(frame) != p.WireLen() {
		t.Fatalf("frame len %d != WireLen %d", len(frame), p.WireLen())
	}
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eth.Src != p.Eth.Src || q.Eth.Dst != p.Eth.Dst {
		t.Fatal("eth mismatch")
	}
	if q.IP.Src != p.IP.Src || q.IP.Dst != p.IP.Dst {
		t.Fatal("ip mismatch")
	}
	if q.TCP.SrcPort != p.TCP.SrcPort || q.TCP.DstPort != p.TCP.DstPort {
		t.Fatal("port mismatch")
	}
	if q.TCP.Seq != p.TCP.Seq || q.TCP.Ack != p.TCP.Ack {
		t.Fatal("seq/ack mismatch")
	}
	if q.TCP.Flags != p.TCP.Flags {
		t.Fatal("flags mismatch")
	}
	if !q.TCP.HasTimestamp || q.TCP.TSVal != 111 || q.TCP.TSEcr != 222 {
		t.Fatalf("timestamp mismatch: %+v", q.TCP)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
}

func TestChecksumsValid(t *testing.T) {
	p := samplePacket()
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if err := VerifyChecksums(frame); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := samplePacket()
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	// Flip a payload byte.
	frame[len(frame)-3] ^= 0xff
	if err := VerifyChecksums(frame); err == nil {
		t.Fatal("corruption not detected")
	}
	// Flip an IP header byte.
	frame2 := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	frame2[EthernetHeaderLen+8] ^= 0x01 // TTL
	if err := VerifyChecksums(frame2); err == nil {
		t.Fatal("IP header corruption not detected")
	}
}

func TestVLANRoundTrip(t *testing.T) {
	p := samplePacket()
	p.VLAN = &VLAN{Priority: 3, ID: 42, EtherType: EtherTypeIPv4}
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.VLAN == nil {
		t.Fatal("VLAN tag lost")
	}
	if q.VLAN.ID != 42 || q.VLAN.Priority != 3 {
		t.Fatalf("VLAN = %+v", q.VLAN)
	}
	if err := VerifyChecksums(frame); err != nil {
		t.Fatal(err)
	}
	if len(frame) != p.WireLen() {
		t.Fatalf("vlan frame len %d != WireLen %d", len(frame), p.WireLen())
	}
}

func TestMSSAndSACKPermOptions(t *testing.T) {
	p := samplePacket()
	p.TCP.HasTimestamp = false
	p.TCP.MSS = 1448
	p.TCP.SACKPerm = true
	p.TCP.WScale = 7
	p.TCP.Flags = FlagSYN
	p.Payload = nil
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP.MSS != 1448 {
		t.Fatalf("MSS = %d", q.TCP.MSS)
	}
	if !q.TCP.SACKPerm {
		t.Fatal("SACKPerm lost")
	}
	if q.TCP.WScale != 7 {
		t.Fatalf("WScale = %d", q.TCP.WScale)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := samplePacket()
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	for _, n := range []int{0, 5, 13, 20, 33, 40, 53} {
		if n >= len(frame) {
			continue
		}
		if _, err := Decode(frame[:n]); err == nil {
			t.Fatalf("truncation at %d not detected", n)
		}
	}
}

func TestDecodeNonIPv4(t *testing.T) {
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	if _, err := Decode(frame); err != ErrNotIPv4 {
		t.Fatalf("err = %v", err)
	}
}

func TestIsDataPath(t *testing.T) {
	cases := []struct {
		flags uint8
		want  bool
	}{
		{FlagACK, true},
		{FlagACK | FlagPSH, true},
		{FlagFIN | FlagACK, true},
		{FlagECE | FlagACK, true},
		{FlagSYN, false},
		{FlagSYN | FlagACK, false},
		{FlagRST, false},
		{FlagRST | FlagACK, false},
		{0, false},
	}
	for _, c := range cases {
		tcp := TCP{Flags: c.flags}
		if got := tcp.IsDataPath(); got != c.want {
			t.Errorf("IsDataPath(flags=%08b) = %v, want %v", c.flags, got, c.want)
		}
	}
}

func TestFlowReverseInvolution(t *testing.T) {
	f := Flow{SrcIP: IP(10, 0, 0, 1), DstIP: IP(10, 0, 0, 2), SrcPort: 1234, DstPort: 80}
	if f.Reverse().Reverse() != f {
		t.Fatal("Reverse is not an involution")
	}
	if f.Reverse() == f {
		t.Fatal("Reverse is identity")
	}
}

func TestFlowGroupStable(t *testing.T) {
	f := Flow{SrcIP: IP(10, 0, 0, 1), DstIP: IP(10, 0, 0, 2), SrcPort: 1234, DstPort: 80}
	g := f.FlowGroup(4)
	for i := 0; i < 10; i++ {
		if f.FlowGroup(4) != g {
			t.Fatal("flow group unstable")
		}
	}
	if g < 0 || g >= 4 {
		t.Fatalf("flow group out of range: %d", g)
	}
}

func TestFlowGroupDistribution(t *testing.T) {
	counts := make([]int, 4)
	for port := 1000; port < 5000; port++ {
		f := Flow{SrcIP: IP(10, 0, 0, 1), DstIP: IP(10, 0, 0, 2), SrcPort: uint16(port), DstPort: 80}
		counts[f.FlowGroup(4)]++
	}
	for g, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("flow group %d has %d/4000 flows (poor distribution)", g, c)
		}
	}
}

func TestECNCodepoints(t *testing.T) {
	ip := IPv4{TOS: 0xb8} // DSCP EF, Not-ECT
	if ip.ECN() != ECNNotECT {
		t.Fatalf("ECN = %d", ip.ECN())
	}
	ip.SetECN(ECNCE)
	if ip.ECN() != ECNCE {
		t.Fatalf("ECN = %d", ip.ECN())
	}
	if ip.TOS>>2 != 0xb8>>2 {
		t.Fatal("SetECN clobbered DSCP")
	}
}

func TestIncrementalChecksum(t *testing.T) {
	// Patching a field and adjusting the checksum must equal recomputing.
	p := samplePacket()
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	q, _ := Decode(frame)
	oldSeq := q.TCP.Seq
	newSeq := oldSeq + 777
	adjusted := IncrementalChecksumAdjust(q.TCP.Checksum, oldSeq, newSeq)

	p2 := samplePacket()
	p2.TCP.Seq = newSeq
	frame2 := p2.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	q2, _ := Decode(frame2)
	if adjusted != q2.TCP.Checksum {
		t.Fatalf("incremental %04x != recomputed %04x", adjusted, q2.TCP.Checksum)
	}
}

func TestIncrementalChecksumProperty(t *testing.T) {
	f := func(seq, delta uint32, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := samplePacket()
		p.TCP.Seq = seq
		p.Payload = payload
		frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
		q, err := Decode(frame)
		if err != nil {
			return false
		}
		adjusted := IncrementalChecksumAdjust(q.TCP.Checksum, seq, seq+delta)
		p.TCP.Seq = seq + delta
		frame2 := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
		q2, err := Decode(frame2)
		if err != nil {
			return false
		}
		return adjusted == q2.TCP.Checksum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	// Property: serialize→decode recovers header fields and payload for
	// arbitrary field values.
	f := func(seq, ack uint32, sport, dport uint16, win uint16, payload []byte) bool {
		if len(payload) > 1448 {
			payload = payload[:1448]
		}
		p := samplePacket()
		p.TCP.Seq = seq
		p.TCP.Ack = ack
		p.TCP.SrcPort = sport
		p.TCP.DstPort = dport
		p.TCP.Window = win
		p.Payload = payload
		frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
		q, err := Decode(frame)
		if err != nil {
			return false
		}
		if VerifyChecksums(frame) != nil {
			return false
		}
		return q.TCP.Seq == seq && q.TCP.Ack == ack &&
			q.TCP.SrcPort == sport && q.TCP.DstPort == dport &&
			q.TCP.Window == win && bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSACKOptionRoundTrip(t *testing.T) {
	p := samplePacket()
	p.TCP.AddSACK(SACKBlock{Start: 1000, End: 2000})
	p.TCP.AddSACK(SACKBlock{Start: 3000, End: 3500})
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if err := VerifyChecksums(frame); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP.NumSACK != 2 {
		t.Fatalf("NumSACK = %d", q.TCP.NumSACK)
	}
	if q.TCP.SACKBlocks[0] != (SACKBlock{1000, 2000}) || q.TCP.SACKBlocks[1] != (SACKBlock{3000, 3500}) {
		t.Fatalf("blocks = %v", q.TCP.SACKBlocks[:2])
	}
	if !q.TCP.HasTimestamp || q.TCP.TSVal != 111 {
		t.Fatalf("timestamp lost alongside SACK: %+v", q.TCP)
	}
}

func TestSACKOptionSpaceTruncation(t *testing.T) {
	// With the 10-byte timestamp option, only 3 of 4 blocks fit in the
	// 40-byte option space; the tail is dropped (senders put the most
	// recent block first, so the fresh news always survives).
	p := samplePacket()
	for i := uint32(0); i < 4; i++ {
		p.TCP.AddSACK(SACKBlock{Start: 1000 * (i + 1), End: 1000*(i+1) + 500})
	}
	frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP.NumSACK != 3 {
		t.Fatalf("NumSACK with timestamps = %d, want 3", q.TCP.NumSACK)
	}
	for i := 0; i < 3; i++ {
		if q.TCP.SACKBlocks[i] != p.TCP.SACKBlocks[i] {
			t.Fatalf("block %d = %v", i, q.TCP.SACKBlocks[i])
		}
	}
	// Without timestamps all 4 fit.
	p.TCP.HasTimestamp = false
	frame = p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if q, err = Decode(frame); err != nil {
		t.Fatal(err)
	}
	if q.TCP.NumSACK != 4 {
		t.Fatalf("NumSACK without timestamps = %d, want 4", q.TCP.NumSACK)
	}
	// A fifth block is silently refused at the API boundary.
	p.TCP.AddSACK(SACKBlock{Start: 9000, End: 9500})
	if p.TCP.NumSACK != 4 {
		t.Fatalf("AddSACK overflowed: %d", p.TCP.NumSACK)
	}
}

func TestSACKOptionRoundTripProperty(t *testing.T) {
	// Property: for arbitrary block sets and option combinations, the
	// encoded header stays within the 40-byte option space and decode
	// recovers exactly the blocks that fit, in order.
	f := func(nRaw uint8, starts, lens [MaxSACKBlocks]uint32, ts bool, payload []byte) bool {
		if len(payload) > 1448 {
			payload = payload[:1448]
		}
		n := int(nRaw) % (MaxSACKBlocks + 1)
		p := samplePacket()
		p.TCP.HasTimestamp = ts
		p.Payload = payload
		for i := 0; i < n; i++ {
			p.TCP.AddSACK(SACKBlock{Start: starts[i], End: starts[i] + lens[i]})
		}
		frame := p.Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true})
		if VerifyChecksums(frame) != nil {
			return false
		}
		q, err := Decode(frame)
		if err != nil {
			return false
		}
		want := n
		if max := 4; ts {
			max = 3
			if want > max {
				want = max
			}
		}
		if int(q.TCP.NumSACK) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if q.TCP.SACKBlocks[i] != p.TCP.SACKBlocks[i] {
				return false
			}
		}
		return bytes.Equal(q.Payload, payload) && q.TCP.tcpOptionsLen() <= TCPMaxOptionLen
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(0x5ac4b10c))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAddrStrings(t *testing.T) {
	if got := IP(192, 168, 1, 20).String(); got != "192.168.1.20" {
		t.Fatalf("IP string = %q", got)
	}
	if got := MAC(0xde, 0xad, 0xbe, 0xef, 0, 1).String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC string = %q", got)
	}
	f := Flow{SrcIP: IP(10, 0, 0, 1), DstIP: IP(10, 0, 0, 2), SrcPort: 5, DstPort: 6}
	if got := f.String(); got != "10.0.0.1:5>10.0.0.2:6" {
		t.Fatalf("Flow string = %q", got)
	}
}

// TestFlowHashMatchesCRC32 pins Flow.Hash's inline table loop to the
// standard library's crc32.ChecksumIEEE (the flow-group steering and
// lookup keys must not change).
func TestFlowHashMatchesCRC32(t *testing.T) {
	for i := 0; i < 1000; i++ {
		f := Flow{
			SrcIP:   IPv4Addr(i * 2654435761),
			DstIP:   IPv4Addr(i*40503 + 7),
			SrcPort: uint16(i * 31),
			DstPort: uint16(i*17 + 3),
		}
		var b [12]byte
		binary.BigEndian.PutUint32(b[0:], uint32(f.SrcIP))
		binary.BigEndian.PutUint32(b[4:], uint32(f.DstIP))
		binary.BigEndian.PutUint16(b[8:], f.SrcPort)
		binary.BigEndian.PutUint16(b[10:], f.DstPort)
		if got, want := f.Hash(), crc32.ChecksumIEEE(b[:]); got != want {
			t.Fatalf("Hash(%v) = %#x, crc32 = %#x", f, got, want)
		}
	}
}

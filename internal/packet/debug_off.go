//go:build !flexdebug

package packet

func poisonPayload(p *Packet) {}
func checkPoison(p *Packet)   {}

// Package packet implements wire-format encoding and decoding for the
// protocol layers FlexTOE processes: Ethernet (with optional 802.1Q VLAN
// tags), IPv4 with ECN, and TCP with the options the data-path understands
// (MSS, timestamps, SACK-permitted). The design follows gopacket's layered
// model: each layer decodes from and serializes to raw bytes, and a Packet
// bundles the decoded layers with the payload.
//
// The simulator's fast path passes structured segments between pipeline
// stages, but raw bytes are authoritative wherever the paper's system
// touches raw bytes: XDP/eBPF programs, tcpdump-style capture, checksum
// verification, and connection splicing all operate on serialized packets
// produced by this package.
package packet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// EtherAddr is a 48-bit MAC address.
type EtherAddr [6]byte

func (a EtherAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// MAC builds an EtherAddr from six bytes.
func MAC(a, b, c, d, e, f byte) EtherAddr { return EtherAddr{a, b, c, d, e, f} }

// IPv4Addr is a 32-bit IPv4 address in network byte order.
type IPv4Addr uint32

// IP builds an IPv4Addr from dotted-quad components.
func IP(a, b, c, d byte) IPv4Addr {
	return IPv4Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (ip IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherTypes understood by the data-path.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoTCP byte = 6
	ProtoUDP byte = 17
)

// ECN codepoints in the low two bits of the IPv4 TOS byte.
const (
	ECNNotECT byte = 0x0
	ECNECT1   byte = 0x1
	ECNECT0   byte = 0x2
	ECNCE     byte = 0x3
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
	FlagECE uint8 = 1 << 6
	FlagCWR uint8 = 1 << 7
)

// TCP option kinds.
const (
	OptEnd       byte = 0
	OptNOP       byte = 1
	OptMSS       byte = 2
	OptWScale    byte = 3
	OptSACKPerm  byte = 4
	OptSACK      byte = 5
	OptTimestamp byte = 8
)

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	VLANTagLen        = 4
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	TimestampOptLen   = 12 // 2 NOPs + kind/len/tsval/tsecr
	TCPMaxOptionLen   = 40 // data offset is 4 bits: 60-byte header max
)

// MaxSACKBlocks bounds the SACK blocks a header carries. RFC 2018 allows
// at most 4 in the 40-byte option space; with the timestamp option the
// encoder fits only 3 and truncates from the tail, so the most important
// block must be placed first.
const MaxSACKBlocks = 4

// SACKBlock is one selectively acknowledged range [Start, End) in the
// peer's sequence space (RFC 2018 left/right edge; End is exclusive).
type SACKBlock struct {
	Start, End uint32
}

// Ethernet is the layer-2 header.
type Ethernet struct {
	Dst       EtherAddr
	Src       EtherAddr
	EtherType uint16
}

// VLAN is an 802.1Q tag between the Ethernet header and the payload.
type VLAN struct {
	Priority  uint8  // PCP, 3 bits
	ID        uint16 // VID, 12 bits
	EtherType uint16 // encapsulated ethertype
}

// IPv4 is the layer-3 header (no options supported: the data-path filters
// IP-option packets to the control plane, like the hardware pre-processor).
type IPv4 struct {
	TOS      byte // DSCP<<2 | ECN
	Length   uint16
	ID       uint16
	TTL      byte
	Protocol byte
	Checksum uint16
	Src      IPv4Addr
	Dst      IPv4Addr
}

// ECN returns the ECN codepoint.
func (ip *IPv4) ECN() byte { return ip.TOS & 0x3 }

// SetECN sets the ECN codepoint, preserving DSCP.
func (ip *IPv4) SetECN(c byte) { ip.TOS = ip.TOS&^0x3 | c&0x3 }

// TCP is the layer-4 header.
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      uint8
	Window     uint16
	Checksum   uint16
	Urgent     uint16

	// Decoded options (only kinds the data-path understands).
	MSS          uint16 // 0 when absent
	HasTimestamp bool
	TSVal        uint32
	TSEcr        uint32
	SACKPerm     bool
	WScale       int8 // -1 when absent

	// SACK blocks (kind 5). The array is fixed so the hot-path decode
	// stays allocation-free; NumSACK counts the valid prefix.
	SACKBlocks [MaxSACKBlocks]SACKBlock
	NumSACK    uint8
}

// AddSACK appends a SACK block, dropping silently at capacity.
func (t *TCP) AddSACK(b SACKBlock) {
	if t.NumSACK < MaxSACKBlocks {
		t.SACKBlocks[t.NumSACK] = b
		t.NumSACK++
	}
}

// HasFlag reports whether all bits in f are set.
func (t *TCP) HasFlag(f uint8) bool { return t.Flags&f == f }

// IsDataPath reports whether the segment belongs to the offloaded
// data-path. Per §3.1.3, data-path segments carry any of ACK, FIN, PSH,
// ECE, CWR and none of SYN/RST; SYN and RST segments go to the
// control plane.
func (t *TCP) IsDataPath() bool {
	if t.Flags&(FlagSYN|FlagRST) != 0 {
		return false
	}
	return t.Flags&(FlagACK|FlagFIN|FlagPSH|FlagECE|FlagCWR) != 0
}

// Flow identifies a TCP connection by its 4-tuple. The flow's protocol is
// implicitly TCP (the paper ignores the protocol field in the hash).
type Flow struct {
	SrcIP   IPv4Addr
	DstIP   IPv4Addr
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the flow seen from the other endpoint.
func (f Flow) Reverse() Flow {
	return Flow{SrcIP: f.DstIP, DstIP: f.SrcIP, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// ieeeTable backs Flow.Hash's inline CRC-32 (identical to
// crc32.ChecksumIEEE; see TestFlowHashMatchesCRC32).
var ieeeTable = crc32.MakeTable(crc32.IEEE)

// Hash returns the CRC-32 hash of the 4-tuple, matching the pre-processor's
// use of the NFP lookup engine's CRC-32 unit (§4.1). The byte-at-a-time
// loop is local so the scratch buffer stays on the stack (ChecksumIEEE
// dispatches through a function pointer, which forces it to escape —
// three heap allocations per simulated segment on the old path).
func (f Flow) Hash() uint32 {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], uint32(f.SrcIP))
	binary.BigEndian.PutUint32(b[4:], uint32(f.DstIP))
	binary.BigEndian.PutUint16(b[8:], f.SrcPort)
	binary.BigEndian.PutUint16(b[10:], f.DstPort)
	crc := ^uint32(0)
	for _, c := range b {
		crc = ieeeTable[byte(crc)^c] ^ (crc >> 8)
	}
	return ^crc
}

// FlowGroup maps the flow to one of n flow-group islands (§3.1).
func (f Flow) FlowGroup(n int) int {
	if n <= 1 {
		return 0
	}
	return int(f.Hash() % uint32(n))
}

func (f Flow) String() string {
	return fmt.Sprintf("%v:%d>%v:%d", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort)
}

package packet

import (
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// The data path builds every ACK and data segment into a recycled Packet
// whose payload bytes are carved from a slab (shm.Slab), so the
// steady-state wire path performs no heap allocation.
//
// Ownership rule (the single rule everything follows): a Packet has
// exactly one owner at a time. Building one and handing it to the fabric
// (netsim.Iface.Send) transfers ownership hop by hop; the party that
// terminates the packet's journey — the stack that consumed it, or the
// drop point (switch loss/WRED/flood, unconnected interface) — calls
// Release exactly once, and must not touch the packet afterwards.
// Senders must never retain or re-send a Packet they have transmitted
// (retransmissions rebuild from the payload buffer). Release on a packet
// built with a plain &Packet{} literal (control plane, applications,
// tests) is a no-op, so consumers can release unconditionally.
//
// Sharding (PR 7): freelists and slabs are single-threaded by design, so
// each shard engine owns a private Pool (PoolOf). A packet remembers the
// pool it came from; when a frame crosses a shard boundary the receiving
// interface adopts the packet into its own shard's pool (Pool.Adopt), so
// Release — wherever the journey ends — always recycles into the pool of
// the shard that currently owns the packet. Payload backings migrate with
// the packet and are never returned to any slab, so adoption is safe.

// Pool is one shard's packet pool: a freelist of Packet shells plus the
// slab backing their payload bytes. A Pool is single-threaded; use one
// per shard engine (PoolOf) or per test.
type Pool struct {
	slab *shm.Slab
	free shm.Freelist[Packet]

	// Stats counts pooled-packet traffic for tests and diagnostics,
	// merged across shards at readout (see testbed.PoolStats).
	Stats struct {
		Gets     uint64
		Releases uint64
	}
}

// NewPool returns an empty pool. The 2 KB payload class covers the
// MTU-sized segments of every experiment; oversized payloads fall back to
// a dedicated make that the packet then retains.
func NewPool() *Pool {
	return &Pool{slab: shm.NewSlab(2048, 256)}
}

// defaultPool serves the package-level Get for single-threaded tests,
// examples, and the control plane's standalone uses. Hot paths obtain the
// per-shard pool via PoolOf instead.
//
//flexvet:sharedstate shard-confined — reached only from single-threaded entry points; every sharded hot path uses PoolOf(engine)
var defaultPool = NewPool()

// poolKey keys the per-engine Pool in Engine.Local.
type poolKey struct{}

func newPool() any { return NewPool() }

// PoolOf returns eng's shard-local packet pool, creating it on first use.
func PoolOf(eng *sim.Engine) *Pool {
	return eng.Local(poolKey{}, newPool).(*Pool)
}

// Get returns a zeroed pooled Packet owned by this pool. The caller owns
// it until it calls Release or transmits it (transferring ownership to
// the receiver).
func (pl *Pool) Get() *Packet {
	pl.Stats.Gets++
	if p := pl.free.Get(); p != nil {
		checkPoison(p)
		p.pool = pl
		return p
	}
	return &Packet{pooled: true, pool: pl}
}

// Adopt transfers a pooled packet into this pool. Called by the receiving
// interface when a frame crosses a shard boundary, so the packet's
// eventual Release recycles into the owning shard's freelist. A no-op for
// unpooled packets.
func (pl *Pool) Adopt(p *Packet) {
	if p != nil && p.pooled {
		p.pool = pl
	}
}

// Get returns a zeroed pooled Packet from the default pool. Single-
// threaded callers only; sharded hot paths use PoolOf(engine).Get.
func Get() *Packet {
	return defaultPool.Get()
}

// Release recycles a pooled packet into the pool that currently owns it.
// It is a no-op for packets not obtained from a Pool, so consumers may
// call it unconditionally on any packet they terminally own. Releasing
// the same packet twice is a caller bug (the pool would hand one object
// to two owners); the pipeline's refcounted segment items make that
// structurally impossible on the data path.
func Release(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	pl := p.pool
	pl.Stats.Releases++
	buf := p.buf
	*p = Packet{}
	p.buf = buf[:0]
	p.pooled = true
	p.pool = pl
	poisonPayload(p)
	pl.free.Put(p)
}

// GrowPayload sets p.Payload to an n-byte buffer carved from the packet's
// retained backing (growing it from the owning pool's slab on first use)
// and returns it. The contents are unspecified; callers overwrite them
// fully.
func (p *Packet) GrowPayload(n int) []byte {
	if cap(p.buf) < n {
		if p.pooled && n <= p.pool.slab.Class() {
			p.buf = p.pool.slab.Get()
		} else {
			p.buf = make([]byte, 0, n)
		}
	}
	p.Payload = p.buf[:n]
	return p.Payload
}

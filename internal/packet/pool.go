package packet

import "flextoe/internal/shm"

// The data path builds every ACK and data segment into a recycled Packet
// whose payload bytes are carved from a shared slab (shm.Slab), so the
// steady-state wire path performs no heap allocation.
//
// Ownership rule (the single rule everything follows): a Packet has
// exactly one owner at a time. Building one and handing it to the fabric
// (netsim.Iface.Send) transfers ownership hop by hop; the party that
// terminates the packet's journey — the stack that consumed it, or the
// drop point (switch loss/WRED/flood, unconnected interface) — calls
// Release exactly once, and must not touch the packet afterwards.
// Senders must never retain or re-send a Packet they have transmitted
// (retransmissions rebuild from the payload buffer). Release on a packet
// built with a plain &Packet{} literal (control plane, applications,
// tests) is a no-op, so consumers can release unconditionally.

// payloadSlab backs pooled packets' payload bytes. The 2 KB class covers
// the MTU-sized segments of every experiment; oversized payloads fall
// back to a dedicated make that the packet then retains.
var payloadSlab = shm.NewSlab(2048, 256)

// pktFree is the global packet freelist. The simulation is single-
// threaded, so a plain stack suffices; packets never released (e.g.
// retained by a test) simply fall to the garbage collector.
var pktFree shm.Freelist[Packet]

// PoolStats reports pooled-packet traffic for tests and diagnostics.
var PoolStats struct {
	Gets     uint64
	Releases uint64
}

// Get returns a zeroed pooled Packet. The caller owns it until it calls
// Release or transmits it (transferring ownership to the receiver).
func Get() *Packet {
	PoolStats.Gets++
	if p := pktFree.Get(); p != nil {
		checkPoison(p)
		return p
	}
	return &Packet{pooled: true}
}

// Release recycles a pooled packet. It is a no-op for packets not obtained
// from Get, so consumers may call it unconditionally on any packet they
// terminally own. Releasing the same packet twice is a caller bug (the
// pool would hand one object to two owners); the pipeline's refcounted
// segment items make that structurally impossible on the data path.
func Release(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	PoolStats.Releases++
	buf := p.buf
	*p = Packet{}
	p.buf = buf[:0]
	p.pooled = true
	poisonPayload(p)
	pktFree.Put(p)
}

// GrowPayload sets p.Payload to an n-byte buffer carved from the packet's
// retained backing (growing it from the payload slab on first use) and
// returns it. The contents are unspecified; callers overwrite them fully.
func (p *Packet) GrowPayload(n int) []byte {
	if cap(p.buf) < n {
		if p.pooled && n <= payloadSlab.Class() {
			p.buf = payloadSlab.Get()
		} else {
			p.buf = make([]byte, 0, n)
		}
	}
	p.Payload = p.buf[:n]
	return p.Payload
}

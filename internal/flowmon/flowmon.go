// Package flowmon is a streaming per-flow TCP analyzer: it reconstructs
// flow state passively from raw packets observed at any tap point — a
// netsim interface tap, a core.TOE packet tap, or a pcap capture — the
// way operators debug offload stacks they cannot instrument (§5.1's
// observability story, productionized in the style of m-lab/etl's
// tcp.Tracker).
//
// The analyzer computes, online and in one pass, per directed flow and
// fleet-wide: RTT samples (timestamp echoes and SEQ/ACK matching),
// retransmitted segments and bytes split into go-back-N rewinds versus
// selective repairs by SACK-scoreboard inference (the m-lab SendNext
// model), out-of-order arrivals and reassembly-hole depth via exact
// re-execution of the stack's interval-set machinery, duplicate-ACK runs,
// zero-window stalls, ECN mark rates, and goodput timelines.
//
// Contracts (doc.go "Passive flow analysis"):
//
//   - Observation only: the analyzer never takes ownership of frames or
//     packets and charges zero simulated cost; the packet is valid only
//     for the duration of the Observe call.
//   - Zero allocations per packet in steady state (CI-gated at <= 2):
//     flow state lives in fixed 256-entry blocks behind a conntab flow
//     index — the PR-8 slab idiom — with first-seen-order readout, and
//     every per-flow structure is fixed-size.
//   - Deterministic: same packet stream, same report, bit for bit; one
//     analyzer per tap keeps state shard-confined, and Fleet merges
//     analyzer reports at readout in attach order.
//
// Inference tolerances — what a passive observer provably cannot see —
// are documented on Report and asserted by the xval cross-validation
// harness (cmd/flextrace's diff mode).
package flowmon

import (
	"unsafe"

	"flextoe/internal/conntab"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
)

// DupAckRule selects which stack's duplicate-ACK definition the analyzer
// reproduces. Both require a pure ACK (no payload) repeating the highest
// cumulative ack with data outstanding; they differ in the guards around
// it.
type DupAckRule int

const (
	// DupAckFlexTOE mirrors tcpseg.ProcessRX: the advertised window must
	// be unchanged from the previous segment of the same direction (a
	// changed window is a window update, not a dupack) and FIN-flagged
	// segments never count.
	DupAckFlexTOE DupAckRule = iota
	// DupAckBaseline mirrors the baseline host stacks, which count every
	// pure repeated ACK while data is outstanding, window and FIN
	// notwithstanding.
	DupAckBaseline
)

// Analyzer sizing constants.
const (
	blockSize = 256 // flow states per slab block (conntab idiom)
	oooMax    = 32  // interval backing capacity (Linux's reassembly cap)
	ringN     = 8   // in-flight RTT probes tracked per flow
	flowBins  = 32  // per-flow goodput timeline bins
)

// Config parameterizes an Analyzer. The zero value is usable: defaults
// are applied by New.
type Config struct {
	// MaxFlows bounds the directed-flow table (default 8192). Packets of
	// flows beyond the budget are counted in FlowsDropped and otherwise
	// ignored — fixed memory no matter the fleet size.
	MaxFlows int
	// OOOCap is the reassembly interval-set capacity of the observed
	// receiver (FlexTOE: the connection's OOOCap; Linux: 32; TAS: 1),
	// driving the exact re-execution of its accept/drop decisions.
	// Negative means no reassembly at all — every out-of-order arrival
	// drops (the Chelsio discard profile). Default
	// tcpseg.MaxOOOIntervals; capped at 32.
	OOOCap int
	// DupAck selects the observed stack's duplicate-ACK definition.
	DupAck DupAckRule
	// RTTMaxUs is the top bucket of the RTT histograms in microseconds
	// (default 4096; larger samples clamp).
	RTTMaxUs int
	// TimelineBin is the width of one goodput-timeline bin (default
	// 1 ms). The fleet timeline has unbounded bins (grown at readout
	// granularity); per-flow timelines keep the first 32 bins.
	TimelineBin sim.Time
	// TimelineBins is the number of fleet-timeline bins (default 64;
	// later traffic clamps into the last bin).
	TimelineBins int
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.MaxFlows <= 0 {
		d.MaxFlows = 8192
	}
	if d.OOOCap == 0 {
		d.OOOCap = tcpseg.MaxOOOIntervals
	}
	if d.OOOCap > oooMax {
		d.OOOCap = oooMax
	}
	if d.RTTMaxUs <= 0 {
		d.RTTMaxUs = 4096
	}
	if d.TimelineBin <= 0 {
		d.TimelineBin = sim.Millisecond
	}
	if d.TimelineBins <= 0 {
		d.TimelineBins = 64
	}
	return d
}

// seqProbe is one in-flight RTT probe: a segment end (or timestamp
// value) mapped to its observation time.
type seqProbe struct {
	key uint32 // segment end sequence, or TSVal
	at  sim.Time
}

// flowState flags.
const (
	fsSndInit = 1 << iota // sndHigh valid
	fsRcvInit             // rcvNxt valid
	fsHaveAck             // una valid (first ack from peer seen)
	fsHaveWin             // lastWin valid
	fsZeroWin             // currently advertising a zero window
)

// flowState is the fixed-size per-directed-flow record. The "sender
// role" fields describe data this flow carries (flow.Src -> flow.Dst);
// ack-borne updates to them arrive on packets of the reverse flow.
type flowState struct {
	flow    packet.Flow
	flags   uint8
	lastWin uint16 // last raw advertised window (dupack window check)

	firstAt, lastAt sim.Time

	// Sender role: SendNext model.
	sndHigh uint32 // highest payload end ever on the wire (SND.MAX)
	una     uint32 // highest cumulative ack seen for this flow's data

	dupAcks   uint64
	dupRun    uint32
	dupRunMax uint32

	retxSegs, retxBytes       uint64
	retxGBNSegs, retxGBNBytes uint64
	retxSelSegs, retxSelBytes uint64

	// Peer-held ranges of this flow's data, fed by SACK blocks on
	// reverse-direction packets (the classification scoreboard).
	sack    [oooMax]tcpseg.SeqInterval
	sackCnt uint8

	// RTT probes: unretransmitted segment ends, and timestamp values.
	seqRing   [ringN]seqProbe
	seqLen    uint8
	tsRing    [ringN]seqProbe
	tsLen     uint8
	lastTSVal uint32

	rttMinUs uint32
	rttMaxUs uint32
	rttSumUs uint64
	rttN     uint64

	ackedBytes uint64
	timeline   [flowBins]uint32 // acked bytes per TimelineBin, saturating

	// Receiver role: exact re-execution of the observed receiver's
	// reassembly decisions for this flow's data.
	rcvNxt     uint32
	ooo        [oooMax]tcpseg.SeqInterval
	oooCnt     uint8
	oooAccepts uint64
	oooDrops   uint64
	oooMerges  uint64

	// Events.
	pkts, dataSegs  uint64
	cePkts, ecePkts uint64
	zeroWinEvents   uint64
	zeroWinStall    sim.Time
	zeroSince       sim.Time
}

// Analyzer is one streaming tap analyzer. Not safe for concurrent use:
// attach one analyzer per tap point (per shard), merge with a Fleet.
type Analyzer struct {
	cfg Config

	idx    *conntab.Index
	blocks [][]flowState
	order  []uint32 // slots in first-seen order (establishment-order readout)

	// Fleet-wide statistics.
	Pkts         uint64 // packets observed
	NonTCP       uint64 // non-TCP packets skipped
	FlowsDropped uint64 // packets ignored because the flow table was full

	rttHist  *stats.LinearHist // all RTT samples, microseconds
	oooDepth *stats.LinearHist // interval-set size at each reassembly event
	timeline []uint64          // acked bytes per TimelineBin across all flows
}

// New builds an analyzer.
func New(cfg Config) *Analyzer {
	a := &Analyzer{cfg: cfg.withDefaults()}
	a.idx = conntab.New(func(slot uint32) packet.Flow { return a.at(slot).flow })
	a.rttHist = stats.NewLinearHist(a.cfg.RTTMaxUs)
	a.oooDepth = stats.NewLinearHist(oooMax)
	a.timeline = make([]uint64, a.cfg.TimelineBins)
	return a
}

// at returns the flow state in a slot (which must be live).
func (a *Analyzer) at(slot uint32) *flowState {
	return &a.blocks[slot/blockSize][slot%blockSize]
}

// NumFlows returns the number of directed flows tracked.
func (a *Analyzer) NumFlows() int { return len(a.order) }

// MemBytes reports the flow-table footprint: slab blocks plus the
// flow-hash index — the fixed budget a million-flow fleet analyzes in.
func (a *Analyzer) MemBytes() int {
	stateSize := int(unsafe.Sizeof(flowState{}))
	return len(a.blocks)*blockSize*stateSize + a.idx.MemBytes() + len(a.order)*4
}

// state looks up or creates the directed-flow record. Returns nil when
// the flow table is at its budget.
func (a *Analyzer) state(f packet.Flow, at sim.Time) *flowState {
	if slot, ok := a.idx.Lookup(f); ok {
		return a.at(slot)
	}
	if len(a.order) >= a.cfg.MaxFlows {
		return nil
	}
	slot := uint32(len(a.order))
	if int(slot)/blockSize >= len(a.blocks) {
		a.blocks = append(a.blocks, make([]flowState, blockSize))
	}
	fs := a.at(slot)
	*fs = flowState{flow: f, firstAt: at, rttMinUs: ^uint32(0)}
	a.idx.Insert(f, slot)
	a.order = append(a.order, slot)
	return fs
}

// Observe analyzes one packet. It never retains pkt or any slice of it.
func (a *Analyzer) Observe(at sim.Time, pkt *packet.Packet) {
	a.Pkts++
	if pkt.IP.Protocol != packet.ProtoTCP {
		a.NonTCP++
		return
	}
	flow := pkt.Flow()
	fs := a.state(flow, at)
	rs := a.state(flow.Reverse(), at)
	if fs == nil || rs == nil {
		a.FlowsDropped++
		return
	}
	tcp := &pkt.TCP
	payLen := uint32(len(pkt.Payload))

	fs.pkts++
	fs.lastAt = at
	if pkt.IP.ECN() == packet.ECNCE {
		fs.cePkts++
	}
	if tcp.Flags&packet.FlagECE != 0 {
		fs.ecePkts++
	}
	if tcp.Flags&packet.FlagRST != 0 {
		return
	}
	syn := tcp.Flags&packet.FlagSYN != 0
	if syn {
		// SYN / SYN-ACK: establish both roles' sequence base. Data (and
		// the peer's expected sequence) starts one past the SYN. A
		// SYN-ACK also anchors the reverse flow's cumulative-ack point so
		// the first data ack registers as an advance, not a baseline.
		fs.sndHigh = tcp.Seq + 1
		fs.rcvNxt = tcp.Seq + 1
		fs.flags |= fsSndInit | fsRcvInit
		if tcp.Flags&packet.FlagACK != 0 && rs.flags&fsHaveAck == 0 {
			rs.una = tcp.Ack
			rs.flags |= fsHaveAck
		}
		return
	}

	if tcp.HasTimestamp && tcp.TSVal != fs.lastTSVal {
		fs.lastTSVal = tcp.TSVal
		pushProbe(fs.tsRing[:], &fs.tsLen, tcp.TSVal, at)
	}

	// Zero-window tracking for the window this packet advertises.
	if tcp.Window == 0 {
		if fs.flags&fsZeroWin == 0 {
			fs.flags |= fsZeroWin
			fs.zeroWinEvents++
			fs.zeroSince = at
		}
	} else if fs.flags&fsZeroWin != 0 {
		fs.flags &^= fsZeroWin
		fs.zeroWinStall += at - fs.zeroSince
	}

	if tcp.Flags&packet.FlagACK != 0 {
		a.observeAck(at, fs, rs, tcp, payLen)
	}

	if payLen > 0 {
		a.observeData(at, fs, tcp, payLen)
	}

	fs.lastWin = tcp.Window
	fs.flags |= fsHaveWin
}

// observeAck applies the ACK-borne fields of a packet in direction fs to
// the reverse flow rs — the sender of the data being acknowledged.
func (a *Analyzer) observeAck(at sim.Time, fs, rs *flowState, tcp *packet.TCP, payLen uint32) {
	ack := tcp.Ack
	sampled := false
	switch {
	case rs.flags&fsHaveAck == 0:
		rs.una = ack
		rs.flags |= fsHaveAck
	case tcpseg.SeqGT(ack, rs.una):
		// Cumulative advance: credit goodput and harvest RTT probes.
		if rs.flags&fsSndInit != 0 {
			acked := tcpseg.SeqDiff(tcpseg.SeqMin(ack, rs.sndHigh), rs.una)
			if acked > 0 {
				rs.ackedBytes += uint64(acked)
				a.creditTimeline(rs, at, uint64(acked))
			}
		}
		sampled = a.harvestSeqProbes(rs, ack, at)
		rs.una = ack
		rs.dupRun = 0
		rs.trimSACK()
	case ack == rs.una && payLen == 0 && rs.outstanding() && a.dupAckGuards(fs, tcp):
		rs.dupAcks++
		rs.dupRun++
		if rs.dupRun > rs.dupRunMax {
			rs.dupRunMax = rs.dupRun
		}
	}

	// SACK blocks describe data of the reverse flow: scoreboard them.
	for i := uint8(0); i < tcp.NumSACK; i++ {
		b := tcp.SACKBlocks[i]
		if rs.flags&fsSndInit != 0 {
			if tcpseg.SeqLT(b.Start, rs.una) {
				b.Start = rs.una
			}
			if tcpseg.SeqGT(b.End, rs.sndHigh) {
				b.End = rs.sndHigh
			}
		}
		if tcpseg.SeqGEQ(b.Start, b.End) {
			continue
		}
		ivs, _ := tcpseg.InsertSeqInterval(rs.sack[:rs.sackCnt],
			tcpseg.SeqInterval{Start: b.Start, End: b.End}, oooMax)
		rs.sackCnt = uint8(copy(rs.sack[:], ivs))
	}

	// Timestamp-echo RTT, when SEQ/ACK matching yielded nothing (Karn
	// invalidation, ring overflow): the echo names the send instance.
	if !sampled && tcp.HasTimestamp && tcp.TSEcr != 0 {
		if probeAt, ok := takeProbe(rs.tsRing[:], &rs.tsLen, tcp.TSEcr); ok {
			a.recordRTT(rs, at-probeAt)
		}
	}
}

// dupAckGuards applies the configured stack's extra duplicate-ACK
// conditions to the packet (direction fs) carrying the candidate ack.
func (a *Analyzer) dupAckGuards(fs *flowState, tcp *packet.TCP) bool {
	if a.cfg.DupAck == DupAckBaseline {
		return true
	}
	// FlexTOE: window unchanged from this direction's previous segment,
	// and never on a FIN.
	return fs.flags&fsHaveWin != 0 && tcp.Window == fs.lastWin &&
		tcp.Flags&packet.FlagFIN == 0
}

// outstanding reports whether the flow has sent data not yet
// cumulatively acknowledged.
func (fs *flowState) outstanding() bool {
	return fs.flags&fsSndInit != 0 && tcpseg.SeqGT(fs.sndHigh, fs.una)
}

// trimSACK drops scoreboard coverage at or below the cumulative ack.
func (fs *flowState) trimSACK() {
	ivs := fs.sack[:fs.sackCnt]
	for len(ivs) > 0 && tcpseg.SeqLEQ(ivs[0].End, fs.una) {
		ivs = ivs[1:]
	}
	if len(ivs) > 0 && tcpseg.SeqLT(ivs[0].Start, fs.una) {
		ivs[0].Start = fs.una
	}
	fs.sackCnt = uint8(copy(fs.sack[:], ivs))
}

// observeData applies a payload-bearing segment to its own flow's sender
// role (retransmit inference) and receiver role (reassembly emulation).
func (a *Analyzer) observeData(at sim.Time, fs *flowState, tcp *packet.TCP, payLen uint32) {
	s := tcp.Seq
	e := s + payLen
	fs.dataSegs++

	if fs.flags&fsSndInit == 0 {
		// Mid-stream attach (no SYN observed): the first data segment
		// defines the base; it cannot be classified as a retransmit.
		fs.sndHigh = s
		fs.flags |= fsSndInit
	}

	// SendNext retransmit criterion: any payload byte below the sent
	// high-water mark has been on the wire before.
	if tcpseg.SeqLT(s, fs.sndHigh) {
		over := uint32(tcpseg.SeqDiff(fs.sndHigh, s))
		if over > payLen {
			over = payLen
		}
		fs.retxSegs++
		fs.retxBytes += uint64(over)
		if fs.classifySelective(s, e) {
			fs.retxSelSegs++
			fs.retxSelBytes += uint64(over)
		} else {
			fs.retxGBNSegs++
			fs.retxGBNBytes += uint64(over)
		}
		// Karn: retransmission makes every in-flight SEQ probe
		// ambiguous, and the re-sent range's timestamp too. Earlier
		// timestamp probes stay valid — echoes name the send instance.
		fs.seqLen = 0
		dropProbe(fs.tsRing[:], &fs.tsLen, tcp.TSVal)
	} else {
		pushProbe(fs.seqRing[:], &fs.seqLen, e, at)
	}
	if tcpseg.SeqGT(e, fs.sndHigh) {
		fs.sndHigh = e
	}

	a.emulateReceiver(fs, s, e)
}

// classifySelective infers whether a retransmitted range [s, e) is a
// selective repair — it fills a reported hole without re-covering data
// the peer already holds — or a go-back-N-style rewind (timeout, head
// blast, or recovery without scoreboard knowledge). The m-lab SendNext
// model: with no SACK evidence every retransmit is a rewind.
func (fs *flowState) classifySelective(s, e uint32) bool {
	if fs.sackCnt == 0 {
		return false
	}
	for i := uint8(0); i < fs.sackCnt; i++ {
		iv := fs.sack[i]
		if tcpseg.SeqLT(s, iv.End) && tcpseg.SeqGT(e, iv.Start) {
			return false // re-sending data the peer reported holding
		}
	}
	// Repairs only count below the highest reported block: beyond it the
	// sender is not filling a known hole.
	return tcpseg.SeqLT(s, fs.sack[fs.sackCnt-1].End)
}

// emulateReceiver re-executes the observed receiver's reassembly
// decision for [s, e) with the configured interval capacity — exactly
// the tcpseg.ProcessRX / baseline receivePayload logic minus the
// receive-window trim (a passive observer cannot see buffer occupancy;
// see the Report tolerance notes).
func (a *Analyzer) emulateReceiver(fs *flowState, s, e uint32) {
	if fs.flags&fsRcvInit == 0 {
		fs.rcvNxt = s
		fs.flags |= fsRcvInit
	}
	if tcpseg.SeqLT(s, fs.rcvNxt) {
		if tcpseg.SeqLEQ(e, fs.rcvNxt) {
			return // stale duplicate: nothing accepted
		}
		s = fs.rcvNxt
	}
	if s == fs.rcvNxt {
		ivs, newAck, merged := tcpseg.MergeAdvance(fs.ooo[:fs.oooCnt], e)
		fs.rcvNxt = newAck
		fs.oooCnt = uint8(copy(fs.ooo[:], ivs))
		if merged > 0 {
			fs.oooMerges += uint64(merged)
			a.oooDepth.Record(int(fs.oooCnt))
		}
		return
	}
	ivs, ir := tcpseg.InsertSeqInterval(fs.ooo[:fs.oooCnt],
		tcpseg.SeqInterval{Start: s, End: e}, a.cfg.OOOCap)
	fs.oooCnt = uint8(copy(fs.ooo[:], ivs))
	if ir.Accepted {
		fs.oooAccepts++
		fs.oooMerges += uint64(ir.Merged)
	} else {
		fs.oooDrops++
	}
	a.oooDepth.Record(int(fs.oooCnt))
}

// harvestSeqProbes samples RTT for every in-flight probe the cumulative
// ack covers, reporting whether any sample was taken.
func (a *Analyzer) harvestSeqProbes(fs *flowState, ack uint32, at sim.Time) bool {
	sampled := false
	n := fs.seqLen
	var keep uint8
	for i := uint8(0); i < n; i++ {
		p := fs.seqRing[i]
		if tcpseg.SeqLEQ(p.key, ack) {
			a.recordRTT(fs, at-p.at)
			sampled = true
			continue
		}
		fs.seqRing[keep] = p
		keep++
	}
	fs.seqLen = keep
	return sampled
}

// recordRTT folds one sample into the flow and fleet statistics.
func (a *Analyzer) recordRTT(fs *flowState, d sim.Time) {
	if d < 0 {
		return
	}
	us := uint64(d / sim.Microsecond)
	fs.rttN++
	fs.rttSumUs += us
	u := uint32(us)
	if us > uint64(^uint32(0)) {
		u = ^uint32(0)
	}
	if u < fs.rttMinUs {
		fs.rttMinUs = u
	}
	if u > fs.rttMaxUs {
		fs.rttMaxUs = u
	}
	a.rttHist.Record(int(us))
}

// creditTimeline bins newly acknowledged bytes at their ack time into
// the fleet and per-flow goodput timelines.
func (a *Analyzer) creditTimeline(fs *flowState, at sim.Time, bytes uint64) {
	bin := int(at / a.cfg.TimelineBin)
	fb := bin
	if bin >= len(a.timeline) {
		bin = len(a.timeline) - 1
	}
	a.timeline[bin] += bytes
	if fb >= flowBins {
		fb = flowBins - 1
	}
	if s := uint64(fs.timeline[fb]) + bytes; s > uint64(^uint32(0)) {
		fs.timeline[fb] = ^uint32(0)
	} else {
		fs.timeline[fb] = uint32(s)
	}
}

// pushProbe appends to a fixed probe ring, evicting the oldest entry
// when full (a lost sample, never a wrong one).
func pushProbe(ring []seqProbe, n *uint8, key uint32, at sim.Time) {
	if int(*n) == len(ring) {
		copy(ring, ring[1:])
		*n--
	}
	ring[*n] = seqProbe{key: key, at: at}
	*n++
}

// dropProbe removes the probe matching key, if any, keeping every other
// entry (invalidation, not harvesting).
func dropProbe(ring []seqProbe, n *uint8, key uint32) {
	for i := uint8(0); i < *n; i++ {
		if ring[i].key == key {
			copy(ring[i:], ring[i+1:int(*n)])
			*n--
			return
		}
	}
}

// takeProbe removes and returns the probe matching key, discarding
// older entries (first-echo semantics).
func takeProbe(ring []seqProbe, n *uint8, key uint32) (sim.Time, bool) {
	for i := uint8(0); i < *n; i++ {
		if ring[i].key == key {
			at := ring[i].at
			k := copy(ring, ring[i+1:int(*n)])
			*n = uint8(k)
			return at, true
		}
	}
	return 0, false
}

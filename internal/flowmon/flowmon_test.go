package flowmon

import (
	"bytes"
	"io"
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/pcap"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// seg builds a synthetic TCP packet between fixed endpoints. rev flips
// direction (server -> client).
func seg(rev bool, seq, ack uint32, flags uint8, payLen int, win uint16) *packet.Packet {
	p := &packet.Packet{
		Eth: packet.Ethernet{
			Dst:       packet.MAC(0x02, 0, 0, 0, 0, 2),
			Src:       packet.MAC(0x02, 0, 0, 0, 0, 1),
			EtherType: packet.EtherTypeIPv4,
		},
		IP: packet.IPv4{
			TTL:      64,
			Protocol: packet.ProtoTCP,
			Src:      packet.IP(10, 0, 0, 1),
			Dst:      packet.IP(10, 0, 0, 2),
		},
		TCP: packet.TCP{
			SrcPort: 40000,
			DstPort: 11211,
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  win,
			WScale:  -1,
		},
	}
	if rev {
		p.IP.Src, p.IP.Dst = p.IP.Dst, p.IP.Src
		p.TCP.SrcPort, p.TCP.DstPort = p.TCP.DstPort, p.TCP.SrcPort
	}
	if payLen > 0 {
		p.Payload = make([]byte, payLen)
		for i := range p.Payload {
			p.Payload[i] = byte(seq + uint32(i))
		}
	}
	return p
}

// handshake observes a SYN / SYN-ACK pair so both directions have their
// sequence bases (client ISS 1000, server ISS 5000).
func handshake(a *Analyzer, at sim.Time) {
	a.Observe(at, seg(false, 1000, 0, packet.FlagSYN, 0, 65535))
	a.Observe(at+sim.Microsecond, seg(true, 5000, 1001, packet.FlagSYN|packet.FlagACK, 0, 65535))
}

func clientFlow(t *testing.T, r *Report) *FlowReport {
	t.Helper()
	for i := range r.Flows {
		if r.Flows[i].Flow.SrcPort == 40000 {
			return &r.Flows[i]
		}
	}
	t.Fatal("client flow not found in report")
	return nil
}

func serverFlow(t *testing.T, r *Report) *FlowReport {
	t.Helper()
	for i := range r.Flows {
		if r.Flows[i].Flow.SrcPort == 11211 {
			return &r.Flows[i]
		}
	}
	t.Fatal("server flow not found in report")
	return nil
}

func TestRetxClassification(t *testing.T) {
	a := New(Config{})
	at := sim.Microsecond
	tick := func() sim.Time { at += sim.Microsecond; return at }
	handshake(a, at)

	// Three back-to-back segments; the first is lost on the path past the
	// tap, so the peer SACKs the other two.
	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	a.Observe(tick(), seg(false, 1101, 5001, packet.FlagACK, 100, 65535))
	a.Observe(tick(), seg(false, 1201, 5001, packet.FlagACK, 100, 65535))
	sack := seg(true, 5001, 1001, packet.FlagACK, 0, 65535)
	sack.TCP.AddSACK(packet.SACKBlock{Start: 1101, End: 1301})
	a.Observe(tick(), sack)

	// Selective repair: fills the reported hole, no overlap with held data.
	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	// Rewind: re-sends data the peer reported holding.
	a.Observe(tick(), seg(false, 1101, 5001, packet.FlagACK, 100, 65535))
	// Beyond the highest SACKed byte: not filling a known hole -> rewind.
	a.Observe(tick(), seg(false, 1301, 5001, packet.FlagACK, 100, 65535))
	a.Observe(tick(), seg(false, 1301, 5001, packet.FlagACK, 100, 65535))

	f := clientFlow(t, a.Report())
	if f.RetxSegs != 3 || f.RetxBytes != 300 {
		t.Fatalf("retx = %d segs / %d B, want 3 / 300", f.RetxSegs, f.RetxBytes)
	}
	if f.RetxSelSegs != 1 || f.RetxSelBytes != 100 {
		t.Fatalf("selective = %d segs / %d B, want 1 / 100", f.RetxSelSegs, f.RetxSelBytes)
	}
	if f.RetxGBNSegs != 2 || f.RetxGBNBytes != 200 {
		t.Fatalf("gbn = %d segs / %d B, want 2 / 200", f.RetxGBNSegs, f.RetxGBNBytes)
	}
	if f.DataSegs != 7 {
		t.Fatalf("dataSegs = %d, want 7", f.DataSegs)
	}
}

func TestRetxWithoutScoreboardIsGBN(t *testing.T) {
	a := New(Config{})
	at := sim.Microsecond
	handshake(a, at)
	a.Observe(2*sim.Microsecond, seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	a.Observe(3*sim.Microsecond, seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	f := clientFlow(t, a.Report())
	if f.RetxSegs != 1 || f.RetxGBNSegs != 1 || f.RetxSelSegs != 0 {
		t.Fatalf("retx=%d gbn=%d sel=%d, want 1/1/0 with no SACK evidence",
			f.RetxSegs, f.RetxGBNSegs, f.RetxSelSegs)
	}
}

func TestRetxPartialOverlapCountsOnlyResentBytes(t *testing.T) {
	a := New(Config{})
	handshake(a, sim.Microsecond)
	a.Observe(2*sim.Microsecond, seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	// Straddles SND.MAX: 50 old bytes + 50 new bytes.
	a.Observe(3*sim.Microsecond, seg(false, 1051, 5001, packet.FlagACK, 100, 65535))
	f := clientFlow(t, a.Report())
	if f.RetxSegs != 1 || f.RetxBytes != 50 {
		t.Fatalf("retx = %d segs / %d B, want 1 / 50 (partial overlap)", f.RetxSegs, f.RetxBytes)
	}
}

func dupAckStream(a *Analyzer) {
	at := sim.Microsecond
	tick := func() sim.Time { at += sim.Microsecond; return at }
	handshake(a, at)
	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	// Four identical pure acks; the first doubles as the window baseline.
	for i := 0; i < 4; i++ {
		a.Observe(tick(), seg(true, 5001, 1001, packet.FlagACK, 0, 500))
	}
	// Repeated ack with a changed window: a window update to FlexTOE.
	a.Observe(tick(), seg(true, 5001, 1001, packet.FlagACK, 0, 600))
	// Repeated ack on a FIN: never a dupack to FlexTOE.
	a.Observe(tick(), seg(true, 5001, 1001, packet.FlagACK|packet.FlagFIN, 0, 600))
}

func TestDupAckRuleFlexTOE(t *testing.T) {
	a := New(Config{DupAck: DupAckFlexTOE})
	dupAckStream(a)
	f := clientFlow(t, a.Report())
	// Ack #1 establishes the window baseline (no prior window to compare),
	// #2-#4 count, the window update and the FIN do not.
	if f.DupAcks != 3 {
		t.Fatalf("FlexTOE dupacks = %d, want 3", f.DupAcks)
	}
	if f.DupAckRunMax != 3 {
		t.Fatalf("FlexTOE dupack run max = %d, want 3", f.DupAckRunMax)
	}
}

func TestDupAckRuleBaseline(t *testing.T) {
	a := New(Config{DupAck: DupAckBaseline})
	dupAckStream(a)
	f := clientFlow(t, a.Report())
	// The baseline stacks count every pure repeated ack with data
	// outstanding: all four, the window update, and the FIN.
	if f.DupAcks != 6 {
		t.Fatalf("baseline dupacks = %d, want 6", f.DupAcks)
	}
}

func TestDupAckResetOnAdvance(t *testing.T) {
	a := New(Config{DupAck: DupAckBaseline})
	at := sim.Microsecond
	tick := func() sim.Time { at += sim.Microsecond; return at }
	handshake(a, at)
	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 200, 65535))
	a.Observe(tick(), seg(true, 5001, 1001, packet.FlagACK, 0, 500))
	a.Observe(tick(), seg(true, 5001, 1001, packet.FlagACK, 0, 500))
	a.Observe(tick(), seg(true, 5001, 1101, packet.FlagACK, 0, 500)) // advance
	a.Observe(tick(), seg(true, 5001, 1101, packet.FlagACK, 0, 500))
	f := clientFlow(t, a.Report())
	if f.DupAcks != 3 {
		t.Fatalf("dupacks = %d, want 3", f.DupAcks)
	}
	if f.DupAckRunMax != 2 {
		t.Fatalf("run max = %d, want 2 (runs reset on cumulative advance)", f.DupAckRunMax)
	}
	if f.AckedBytes != 100 {
		t.Fatalf("acked = %d, want 100", f.AckedBytes)
	}
}

func TestOOOEmulation(t *testing.T) {
	a := New(Config{OOOCap: 1})
	at := sim.Microsecond
	tick := func() sim.Time { at += sim.Microsecond; return at }
	handshake(a, at)

	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 100, 65535)) // in order
	a.Observe(tick(), seg(false, 1201, 5001, packet.FlagACK, 100, 65535)) // hole: accepted OOO
	a.Observe(tick(), seg(false, 1401, 5001, packet.FlagACK, 100, 65535)) // 2nd disjoint: over cap, dropped
	a.Observe(tick(), seg(false, 1101, 5001, packet.FlagACK, 100, 65535)) // fills hole, merges [1201,1301)
	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 100, 65535)) // stale duplicate

	f := clientFlow(t, a.Report())
	if f.OOOAccepts != 1 {
		t.Fatalf("ooo accepts = %d, want 1", f.OOOAccepts)
	}
	if f.OOODrops != 1 {
		t.Fatalf("ooo drops = %d, want 1 (cap 1)", f.OOODrops)
	}
	if f.OOOMerges != 1 {
		t.Fatalf("ooo merges = %d, want 1", f.OOOMerges)
	}
}

func TestOOODiscardProfileDropsEverything(t *testing.T) {
	// Negative OOOCap models a receiver with no reassembly (the Chelsio
	// discard profile): every out-of-order arrival drops, in-order data
	// still advances.
	a := New(Config{OOOCap: -1})
	at := sim.Microsecond
	tick := func() sim.Time { at += sim.Microsecond; return at }
	handshake(a, at)
	a.Observe(tick(), seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	a.Observe(tick(), seg(false, 1201, 5001, packet.FlagACK, 100, 65535))
	a.Observe(tick(), seg(false, 1301, 5001, packet.FlagACK, 100, 65535))
	a.Observe(tick(), seg(false, 1101, 5001, packet.FlagACK, 100, 65535))
	f := clientFlow(t, a.Report())
	if f.OOOAccepts != 0 || f.OOODrops != 2 {
		t.Fatalf("discard profile: accepts=%d drops=%d, want 0/2", f.OOOAccepts, f.OOODrops)
	}
}

func TestRTTSeqProbe(t *testing.T) {
	a := New(Config{})
	handshake(a, sim.Microsecond)
	a.Observe(10*sim.Microsecond, seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	a.Observe(60*sim.Microsecond, seg(true, 5001, 1101, packet.FlagACK, 0, 65535))
	f := clientFlow(t, a.Report())
	if f.RTTN != 1 || f.RTTMinUs != 50 || f.RTTMaxUs != 50 {
		t.Fatalf("rtt n=%d min=%d max=%d, want one 50us sample", f.RTTN, f.RTTMinUs, f.RTTMaxUs)
	}
}

func TestRTTKarnAndTimestampFallback(t *testing.T) {
	a := New(Config{})
	handshake(a, sim.Microsecond)

	d1 := seg(false, 1001, 5001, packet.FlagACK, 100, 65535)
	d1.TCP.HasTimestamp, d1.TCP.TSVal, d1.TCP.TSEcr = true, 100, 1
	a.Observe(10*sim.Microsecond, d1)

	// Retransmission: Karn invalidates the SEQ probe and the re-sent
	// range's fresh timestamp.
	d2 := seg(false, 1001, 5001, packet.FlagACK, 100, 65535)
	d2.TCP.HasTimestamp, d2.TCP.TSVal, d2.TCP.TSEcr = true, 101, 1
	a.Observe(20*sim.Microsecond, d2)

	// Ack echoing the ORIGINAL timestamp: samples from the first send.
	ack := seg(true, 5001, 1101, packet.FlagACK, 0, 65535)
	ack.TCP.HasTimestamp, ack.TCP.TSVal, ack.TCP.TSEcr = true, 2, 100
	a.Observe(60*sim.Microsecond, ack)

	f := clientFlow(t, a.Report())
	if f.RTTN != 1 || f.RTTMinUs != 50 {
		t.Fatalf("rtt n=%d min=%d, want one 50us sample via timestamp echo", f.RTTN, f.RTTMinUs)
	}

	// A second echo of the invalidated retransmit timestamp yields nothing.
	ack2 := seg(true, 5001, 1101, packet.FlagACK, 0, 65535)
	ack2.TCP.HasTimestamp, ack2.TCP.TSVal, ack2.TCP.TSEcr = true, 3, 101
	a.Observe(80*sim.Microsecond, ack2)
	f = clientFlow(t, a.Report())
	if f.RTTN != 1 {
		t.Fatalf("rtt n=%d after ambiguous echo, want still 1", f.RTTN)
	}
}

func TestZeroWindowStall(t *testing.T) {
	a := New(Config{})
	handshake(a, sim.Microsecond)
	a.Observe(100*sim.Microsecond, seg(true, 5001, 1001, packet.FlagACK, 0, 0))
	a.Observe(150*sim.Microsecond, seg(true, 5001, 1001, packet.FlagACK, 0, 0))
	a.Observe(300*sim.Microsecond, seg(true, 5001, 1001, packet.FlagACK, 0, 400))
	f := serverFlow(t, a.Report())
	if f.ZeroWinEvents != 1 {
		t.Fatalf("zero-win events = %d, want 1", f.ZeroWinEvents)
	}
	if f.ZeroWinStall != 200*sim.Microsecond {
		t.Fatalf("zero-win stall = %v, want 200us", f.ZeroWinStall)
	}

	// A stall still open at readout is charged up to the last packet.
	a.Observe(400*sim.Microsecond, seg(true, 5001, 1001, packet.FlagACK, 0, 0))
	a.Observe(450*sim.Microsecond, seg(true, 5001, 1001, packet.FlagACK, 0, 0))
	f = serverFlow(t, a.Report())
	if f.ZeroWinEvents != 2 {
		t.Fatalf("zero-win events = %d, want 2", f.ZeroWinEvents)
	}
	if f.ZeroWinStall != 250*sim.Microsecond {
		t.Fatalf("open stall = %v, want 200us closed + 50us open", f.ZeroWinStall)
	}
}

func TestECNCounts(t *testing.T) {
	a := New(Config{})
	handshake(a, sim.Microsecond)
	ce := seg(false, 1001, 5001, packet.FlagACK, 100, 65535)
	ce.IP.SetECN(packet.ECNCE)
	a.Observe(2*sim.Microsecond, ce)
	ece := seg(true, 5001, 1101, packet.FlagACK|packet.FlagECE, 0, 65535)
	a.Observe(3*sim.Microsecond, ece)
	r := a.Report()
	if f := clientFlow(t, r); f.CEPkts != 1 {
		t.Fatalf("ce = %d, want 1", f.CEPkts)
	}
	if f := serverFlow(t, r); f.ECEPkts != 1 {
		t.Fatalf("ece = %d, want 1", f.ECEPkts)
	}
}

func TestMaxFlowsBudget(t *testing.T) {
	a := New(Config{MaxFlows: 2})
	handshake(a, sim.Microsecond) // creates both directions: table full
	other := seg(false, 1, 0, packet.FlagACK, 10, 100)
	other.TCP.SrcPort = 50000
	a.Observe(2*sim.Microsecond, other)
	if a.NumFlows() != 2 {
		t.Fatalf("flows = %d, want 2", a.NumFlows())
	}
	if a.FlowsDropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.FlowsDropped)
	}
	if a.MemBytes() <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", a.MemBytes())
	}
}

func TestGoodputTimeline(t *testing.T) {
	a := New(Config{TimelineBin: sim.Millisecond, TimelineBins: 4})
	handshake(a, sim.Microsecond)
	a.Observe(2*sim.Microsecond, seg(false, 1001, 5001, packet.FlagACK, 100, 65535))
	a.Observe(sim.Millisecond+sim.Microsecond, seg(true, 5001, 1101, packet.FlagACK, 0, 65535))
	a.Observe(sim.Millisecond+2*sim.Microsecond, seg(false, 1101, 5001, packet.FlagACK, 100, 65535))
	a.Observe(10*sim.Millisecond, seg(true, 5001, 1201, packet.FlagACK, 0, 65535)) // clamps to last bin
	r := a.Report()
	if r.Timeline[1] != 100 {
		t.Fatalf("timeline bin 1 = %d, want 100 (acked at ack time)", r.Timeline[1])
	}
	if r.Timeline[3] != 100 {
		t.Fatalf("timeline last bin = %d, want 100 (late ack clamps)", r.Timeline[3])
	}
	f := clientFlow(t, r)
	if f.AckedBytes != 200 {
		t.Fatalf("acked = %d, want 200", f.AckedBytes)
	}
	if f.GoodputBps() <= 0 {
		t.Fatalf("goodput = %v, want > 0", f.GoodputBps())
	}
}

func TestNonTCPAndRSTSkipped(t *testing.T) {
	a := New(Config{})
	udp := seg(false, 0, 0, 0, 10, 0)
	udp.IP.Protocol = packet.ProtoUDP
	a.Observe(sim.Microsecond, udp)
	a.Observe(2*sim.Microsecond, seg(false, 1000, 0, packet.FlagRST, 0, 0))
	if a.NonTCP != 1 {
		t.Fatalf("non-tcp = %d, want 1", a.NonTCP)
	}
	r := a.Report()
	if r.Pkts != 2 {
		t.Fatalf("pkts = %d, want 2", r.Pkts)
	}
	f := clientFlow(t, r)
	if f.DataSegs != 0 || f.AckedBytes != 0 {
		t.Fatalf("RST must not contribute data/ack state: %+v", f)
	}
}

// lossyStream generates a deterministic pseudo-random bidirectional
// transfer with reordering, duplication, and SACKs.
func lossyStream(seed uint64) []*packet.Packet {
	r := stats.NewRNG(seed)
	var pkts []*packet.Packet
	pkts = append(pkts,
		seg(false, 1000, 0, packet.FlagSYN, 0, 65535),
		seg(true, 5000, 1001, packet.FlagSYN|packet.FlagACK, 0, 65535))
	base := uint32(1001)
	sent := uint32(0)
	acked := uint32(0)
	for i := 0; i < 400; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // new data
			p := seg(false, base+sent, 5001, packet.FlagACK, 100, 65535)
			p.TCP.HasTimestamp, p.TCP.TSVal, p.TCP.TSEcr = true, uint32(i+1), 1
			pkts = append(pkts, p)
			sent += 100
		case 6: // retransmit a random earlier segment
			if sent == 0 {
				continue
			}
			off := uint32(r.Intn(int(sent/100))) * 100
			p := seg(false, base+off, 5001, packet.FlagACK, 100, 65535)
			p.TCP.HasTimestamp, p.TCP.TSVal, p.TCP.TSEcr = true, uint32(i+1), 1
			pkts = append(pkts, p)
		case 7, 8: // cumulative ack, sometimes duplicate
			if r.Intn(3) == 0 && acked < sent {
				acked += 100
			}
			p := seg(true, 5001, base+acked, packet.FlagACK, 0, 65535)
			p.TCP.HasTimestamp, p.TCP.TSVal, p.TCP.TSEcr = true, uint32(1000+i), uint32(i)
			pkts = append(pkts, p)
		case 9: // SACK above the cumulative ack
			if acked+300 >= sent {
				continue
			}
			p := seg(true, 5001, base+acked, packet.FlagACK, 0, 65535)
			p.TCP.AddSACK(packet.SACKBlock{Start: base + acked + 200, End: base + acked + 300})
			pkts = append(pkts, p)
		}
	}
	return pkts
}

func TestFlowmonDeterminism(t *testing.T) {
	run := func() string {
		a := New(Config{})
		at := sim.Time(0)
		for _, p := range lossyStream(42) {
			at += sim.Microsecond
			a.Observe(at, p)
		}
		return a.Report().Format()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("reruns differ:\n%s\n---\n%s", r1, r2)
	}
	if len(r1) == 0 {
		t.Fatal("empty report")
	}
}

func TestFleetShardCountInvariance(t *testing.T) {
	// The same packet stream split across 1 or 3 analyzers (per directed
	// flow) must produce identical fleet totals and histograms.
	streams := [][]*packet.Packet{}
	for port := 0; port < 6; port++ {
		s := lossyStream(uint64(100 + port))
		for _, p := range s {
			p.TCP.SrcPort += uint16(port * 2)
			p.TCP.DstPort += uint16(port * 2)
		}
		streams = append(streams, s)
	}

	runSharded := func(shards int) *Report {
		var fl Fleet
		mons := make([]*Analyzer, shards)
		for i := range mons {
			mons[i] = New(Config{})
			fl.Add(mons[i])
		}
		at := sim.Time(0)
		for i := 0; i < len(streams[0]); i++ {
			at += sim.Microsecond
			for si, s := range streams {
				if i < len(s) {
					mons[si%shards].Observe(at, s[i])
				}
			}
		}
		return fl.Report()
	}

	r1, r3 := runSharded(1), runSharded(3)
	if r1.Totals() != r3.Totals() {
		t.Fatalf("totals differ across shard counts:\n1: %+v\n3: %+v", r1.Totals(), r3.Totals())
	}
	if len(r1.Flows) != len(r3.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(r1.Flows), len(r3.Flows))
	}
	if r1.RTTHist.Count() != r3.RTTHist.Count() ||
		r1.RTTHist.Quantile(0.99) != r3.RTTHist.Quantile(0.99) {
		t.Fatalf("rtt hist differs across shard counts")
	}
	for i, v := range r1.Timeline {
		if r3.Timeline[i] != v {
			t.Fatalf("timeline bin %d differs: %d vs %d", i, v, r3.Timeline[i])
		}
	}
}

func TestFeedPCAPMatchesLiveObserve(t *testing.T) {
	pkts := lossyStream(7)

	live := New(Config{})
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	at := sim.Time(0)
	for _, p := range pkts {
		at += sim.Microsecond // pcap keeps microsecond precision
		live.Observe(at, p)
		if err := w.WritePacket(at, p); err != nil {
			t.Fatal(err)
		}
	}

	replay := New(Config{})
	fed, skipped, err := FeedPCAP(bytes.NewReader(buf.Bytes()), replay)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records, want 0", skipped)
	}
	if fed != len(pkts) {
		t.Fatalf("fed %d records, want %d", fed, len(pkts))
	}
	if lr, rr := live.Report().Format(), replay.Report().Format(); lr != rr {
		t.Fatalf("pcap replay diverges from live taps:\n%s\n---\n%s", lr, rr)
	}
}

func TestFeedPCAPToleratesTruncation(t *testing.T) {
	pkts := lossyStream(9)
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf)
	for i, p := range pkts {
		if err := w.WritePacket(sim.Time(i+1)*sim.Microsecond, p); err != nil {
			t.Fatal(err)
		}
	}
	// Cut into the middle of the final record.
	cut := buf.Len() - 10
	a := New(Config{})
	fed, skipped, err := FeedPCAP(bytes.NewReader(buf.Bytes()[:cut]), a)
	if err != nil {
		t.Fatalf("truncated capture must end cleanly, got %v", err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d, want 0", skipped)
	}
	if fed != len(pkts)-1 {
		t.Fatalf("fed %d records from truncated capture, want %d", fed, len(pkts)-1)
	}
}

func TestFeedPCAPSkipsUndecodable(t *testing.T) {
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf)
	if err := w.WriteFrame(sim.Microsecond, []byte{1, 2, 3}); err != nil { // too short to decode
		t.Fatal(err)
	}
	if err := w.WritePacket(2*sim.Microsecond, seg(false, 1000, 0, packet.FlagSYN, 0, 100)); err != nil {
		t.Fatal(err)
	}
	a := New(Config{})
	fed, skipped, err := FeedPCAP(bytes.NewReader(buf.Bytes()), a)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if fed != 1 || skipped != 1 {
		t.Fatalf("fed=%d skipped=%d, want 1/1", fed, skipped)
	}
}

// TestFlowmonAllocBudget is the CI gate: once a flow's slab block exists,
// Observe must cost at most 2 allocations per packet (target 0; the
// budget leaves headroom for histogram growth on first touch).
func TestFlowmonAllocBudget(t *testing.T) {
	pkts := lossyStream(13)
	a := New(Config{})
	at := sim.Time(0)
	for _, p := range pkts { // warm: flows, blocks, histograms
		at += sim.Microsecond
		a.Observe(at, p)
	}
	per := testing.AllocsPerRun(10, func() {
		for _, p := range pkts {
			at += sim.Microsecond
			a.Observe(at, p)
		}
	}) / float64(len(pkts))
	if per > 2 {
		t.Fatalf("Observe allocates %.3f/packet in steady state, budget 2", per)
	}
}

// Package xval cross-validates flowmon's passive inference against stack
// ground truth: it runs a seeded lossy bulk transfer between two machines
// of one personality with analyzers on both NIC taps, then compares the
// analyzer's inferred counters with the counters the stacks themselves
// maintain. The comparison tolerances are part of the flowmon contract
// (see flowmon.Report): retransmits at the sender tap and reassembly
// decisions at the receiver tap must match exactly; duplicate-ACK counts
// may diverge by a documented bounded amount around recovery episodes.
//
// The harness backs both cmd/flextrace's diff mode and the CI
// cross-validation tests.
package xval

import (
	"fmt"
	"strings"

	"flextoe/internal/apps"
	"flextoe/internal/core"
	"flextoe/internal/flowmon"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
	"flextoe/internal/testbed"
)

// Scenario parameterizes one cross-validation run. The zero value is
// usable: Run applies defaults.
type Scenario struct {
	// Personality selects the stack under observation on both machines:
	// testbed.FlexTOE (SACK data-path, 4-interval reassembly,
	// window-guarded dupack rule) or testbed.Linux (32-interval
	// reassembly, unguarded dupack rule). Default FlexTOE.
	Personality testbed.StackKind
	Loss        float64  // injected loss probability (default 1e-3)
	Conns       int      // bulk connections (default 8)
	Duration    sim.Time // simulated time (default 10 ms)
	Seed        uint64   // switch loss seed (default 42)
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Personality == "" {
		sc.Personality = testbed.FlexTOE
	}
	if sc.Loss == 0 {
		sc.Loss = 1e-3
	}
	if sc.Conns <= 0 {
		sc.Conns = 8
	}
	if sc.Duration <= 0 {
		sc.Duration = 10 * sim.Millisecond
	}
	if sc.Seed == 0 {
		sc.Seed = 42
	}
	return sc
}

// Check is one analyzer-vs-stack counter comparison. The tolerance is
// asserted, not advisory: OK reports whether the divergence is within
// TolAbs + TolFrac * Stack.
type Check struct {
	Name     string
	Analyzer uint64
	Stack    uint64
	TolAbs   uint64
	TolFrac  float64
}

// Diff returns the absolute divergence.
func (c Check) Diff() uint64 {
	if c.Analyzer > c.Stack {
		return c.Analyzer - c.Stack
	}
	return c.Stack - c.Analyzer
}

// OK reports whether the divergence is within tolerance.
func (c Check) OK() bool {
	return c.Diff() <= c.TolAbs+uint64(c.TolFrac*float64(c.Stack))
}

// Result is one cross-validation outcome.
type Result struct {
	Scenario Scenario
	Checks   []Check

	// ClientReport taps the sender NIC (retransmit/dupack vantage);
	// ServerReport taps the receiver NIC (reassembly vantage).
	ClientReport *flowmon.Report
	ServerReport *flowmon.Report

	SinkBytes uint64 // payload delivered to the receiving application
}

// Pass reports whether every check is within its tolerance.
func (r *Result) Pass() bool {
	for _, c := range r.Checks {
		if !c.OK() {
			return false
		}
	}
	return true
}

// Format renders the comparison as an aligned table.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "xval %s: loss %g, %d conns, %v, %d B delivered\n",
		r.Scenario.Personality, r.Scenario.Loss, r.Scenario.Conns,
		r.Scenario.Duration, r.SinkBytes)
	fmt.Fprintf(&b, "  %-22s %12s %12s %10s %10s  %s\n",
		"counter", "analyzer", "stack", "diff", "tolerance", "ok")
	for _, c := range r.Checks {
		tol := fmt.Sprintf("%d", c.TolAbs)
		if c.TolFrac > 0 {
			tol = fmt.Sprintf("%d+%g%%", c.TolAbs, c.TolFrac*100)
		}
		ok := "ok"
		if !c.OK() {
			ok = "FAIL"
		}
		fmt.Fprintf(&b, "  %-22s %12d %12d %10d %10s  %s\n",
			c.Name, c.Analyzer, c.Stack, c.Diff(), tol, ok)
	}
	return b.String()
}

// dirTotals sums the sender-side counters of every flow sourced at ip and
// the receiver-side counters of every flow destined to it.
type dirTotals struct {
	retxSegs, retxBytes, dupAcks uint64
	oooAccepts, oooDrops         uint64
}

func totalsFor(r *flowmon.Report, srcIP packet.IPv4Addr) dirTotals {
	var t dirTotals
	for i := range r.Flows {
		f := &r.Flows[i]
		if f.Flow.SrcIP == srcIP {
			t.retxSegs += f.RetxSegs
			t.retxBytes += f.RetxBytes
			t.dupAcks += f.DupAcks
			t.oooAccepts += f.OOOAccepts
			t.oooDrops += f.OOODrops
		}
	}
	return t
}

// monitorConfig returns the analyzer configuration that mirrors the
// personality's receiver and dupack semantics.
func monitorConfig(kind testbed.StackKind) flowmon.Config {
	if kind == testbed.FlexTOE {
		return flowmon.Config{DupAck: flowmon.DupAckFlexTOE, OOOCap: tcpseg.MaxOOOIntervals}
	}
	return flowmon.Config{DupAck: flowmon.DupAckBaseline, OOOCap: 32}
}

// play builds and runs the scenario, optionally with analyzers attached
// to both NICs (nil mons = bare run), returning the testbed and the
// bytes the sink application received.
func play(sc Scenario, clientMon, serverMon *flowmon.Analyzer) (*testbed.Testbed, uint64) {
	client := testbed.MachineSpec{Name: "client", Kind: sc.Personality,
		Cores: 4, BufSize: 1 << 19, Seed: sc.Seed + 2}
	server := testbed.MachineSpec{Name: "server", Kind: sc.Personality,
		Cores: 4, BufSize: 1 << 19, Seed: sc.Seed + 1}
	if sc.Personality == testbed.FlexTOE {
		cfg := core.AgilioCX40Config()
		cfg.OOOIntervals = tcpseg.MaxOOOIntervals
		cfg.EnableSACK = true
		client.FlexCfg = &cfg
		server.FlexCfg = &cfg
	}

	tb := testbed.New(netsim.SwitchConfig{LossProb: sc.Loss, Seed: sc.Seed}, server, client)
	if clientMon != nil {
		flowmon.Attach(clientMon, tb.M("client").Iface)
	}
	if serverMon != nil {
		flowmon.Attach(serverMon, tb.M("server").Iface)
	}

	sink := &apps.BulkSink{}
	sink.Serve(tb.M("server").Stack, 9000)
	senders := make([]*apps.BulkSender, sc.Conns)
	for i := range senders {
		senders[i] = &apps.BulkSender{}
		senders[i].Start(tb.M("client").Stack, tb.Addr("server", 9000))
	}
	tb.Run(sc.Duration)

	// Quiesce before the counter snapshot: stop the senders and let
	// in-flight segments drain. The analyzer observes a segment at NIC
	// delivery while the stack counts it at (possibly deferred)
	// processing; comparing mid-flight would measure queue depth, not
	// inference accuracy.
	for _, snd := range senders {
		snd.Stop()
	}
	tb.Run(sc.Duration + 5*sim.Millisecond)
	return tb, sink.Received
}

// groundTruth reads the stacks' own counters for the client->server
// direction: the client's TX accounting, the server's RX reassembly.
func groundTruth(tb *testbed.Testbed, kind testbed.StackKind) dirTotals {
	if kind == testbed.FlexTOE {
		ct, st := tb.M("client").TOE, tb.M("server").TOE
		return dirTotals{
			retxSegs: ct.RetxSegs, retxBytes: ct.RetxBytes, dupAcks: ct.DupAcks,
			oooAccepts: st.OOOAccepted, oooDrops: st.OOODropped,
		}
	}
	cb, sb := tb.M("client").Base, tb.M("server").Base
	return dirTotals{
		retxSegs: cb.RetxSegs, retxBytes: cb.RetxBytes, dupAcks: cb.DupAcks,
		oooAccepts: sb.OOOAccepted, oooDrops: sb.OOODropped,
	}
}

// bareResult is a tap-free reference run (TestTapsDoNotPerturbSimulation).
type bareResult struct {
	sinkBytes uint64
	truth     map[string]uint64
}

// runBare executes the scenario with no analyzers attached.
func runBare(sc Scenario) bareResult {
	sc = sc.withDefaults()
	tb, sinkBytes := play(sc, nil, nil)
	tr := groundTruth(tb, sc.Personality)
	return bareResult{sinkBytes: sinkBytes, truth: map[string]uint64{
		"retx-segs": tr.retxSegs, "retx-bytes": tr.retxBytes,
		"ooo-accepts": tr.oooAccepts, "ooo-drops": tr.oooDrops,
		"dupacks": tr.dupAcks,
	}}
}

// Run executes the scenario: Conns bulk flows client -> server through a
// lossy switch, a flowmon analyzer passively attached to each machine's
// NIC, and the stacks' own counters as ground truth.
func Run(sc Scenario) *Result {
	sc = sc.withDefaults()
	mcfg := monitorConfig(sc.Personality)
	clientMon := flowmon.New(mcfg)
	serverMon := flowmon.New(mcfg)
	tb, sinkBytes := play(sc, clientMon, serverMon)

	res := &Result{
		Scenario:     sc,
		ClientReport: clientMon.Report(),
		ServerReport: serverMon.Report(),
		SinkBytes:    sinkBytes,
	}

	// Analyzer vantage: the client tap sees every byte the client sends
	// (retransmit inference is exact there) and every ack delivered to it
	// (dupack inference); the server tap sees every data segment the
	// server's receiver processes (reassembly emulation).
	clientIP := tb.M("client").IP
	atClient := totalsFor(res.ClientReport, clientIP)
	atServer := totalsFor(res.ServerReport, clientIP)
	truth := groundTruth(tb, sc.Personality)

	// Tolerances (the flowmon.Report contract):
	//   - Retransmits: exact. Every transmitted byte crosses the sender
	//     tap and both sides apply the same SendNext high-water rule.
	//   - Reassembly accepts/drops: exact at trace loss rates (the
	//     receiver tap sees exactly the segments the stack processes and
	//     the emulation replays the same interval-set code). The stack
	//     additionally trims arrivals to its receive window — buffer
	//     occupancy a passive observer cannot see — and under sustained
	//     loss (>= 1%) reassembly holes pin the window down often enough
	//     to reclassify a handful of segments: bound 2 per connection
	//     plus 0.5%.
	//   - Dupacks: bounded divergence. The stacks' in-flight accounting
	//     (TxSent, SND.NXT) resets across RTO/go-back-N episodes where
	//     the wire-level high-water model does not, so around each
	//     recovery episode the analyzer can classify a few repeated acks
	//     differently: 2 per connection plus 5% slack.
	dupTol := uint64(2 * sc.Conns)
	res.Checks = []Check{
		{Name: "retx-segs", Analyzer: atClient.retxSegs, Stack: truth.retxSegs},
		{Name: "retx-bytes", Analyzer: atClient.retxBytes, Stack: truth.retxBytes},
		{Name: "ooo-accepts", Analyzer: atServer.oooAccepts, Stack: truth.oooAccepts,
			TolAbs: uint64(2 * sc.Conns), TolFrac: 0.005},
		{Name: "ooo-drops", Analyzer: atServer.oooDrops, Stack: truth.oooDrops,
			TolAbs: uint64(2 * sc.Conns), TolFrac: 0.005},
		{Name: "dupacks", Analyzer: atClient.dupAcks, Stack: truth.dupAcks,
			TolAbs: dupTol, TolFrac: 0.05},
	}
	return res
}

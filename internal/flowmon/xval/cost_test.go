package xval

import (
	"testing"

	"flextoe/internal/apps"
	"flextoe/internal/flowmon"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
	"flextoe/internal/trace"
)

// costProbe is one observability-cost measurement: a saturating small-RPC
// workload with optional full tracing and optional passive NIC taps.
type costProbe struct {
	completed uint64   // closed-loop RPCs finished in the fixed window
	rxSegs    uint64   // server TOE segments processed
	txSegs    uint64   // server TOE segments emitted
	events    []uint64 // per-engine processed event counts
}

func runCostProbe(traceAll, taps bool) costProbe {
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, Seed: 1},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, Seed: 2},
	)
	srv := tb.M("server")
	if traceAll {
		srv.TOE.Trace().EnableAll()
	}
	if taps {
		flowmon.Attach(flowmon.New(flowmon.Config{}), srv.Iface)
		flowmon.Attach(flowmon.New(flowmon.Config{}), tb.M("client").Iface)
	}
	rpc := &apps.RPCServer{ReqSize: 64}
	rpc.Serve(srv.Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 8}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 100)
	tb.Run(5 * sim.Millisecond)

	p := costProbe{completed: cl.Completed, rxSegs: srv.TOE.RxSegs, txSegs: srv.TOE.TxSegs}
	for _, e := range tb.Group.Engines() {
		p.events = append(p.events, e.Processed())
	}
	return p
}

// TestTracepointCostRegression: enabling all 48 tracepoints charges
// CyclesPerHit per hit on the data path, so the same wall-clock window
// must complete strictly fewer RPCs than the untraced run. If this test
// fails, tracepoint hits stopped being charged to the pipeline.
func TestTracepointCostRegression(t *testing.T) {
	if trace.NumPoints != 48 {
		t.Fatalf("tracepoint registry has %d points, contract says 48", trace.NumPoints)
	}
	base := runCostProbe(false, false)
	traced := runCostProbe(true, false)
	if base.completed == 0 {
		t.Fatal("workload inert: no RPCs completed")
	}
	if traced.completed >= base.completed {
		t.Fatalf("tracing is free: %d RPCs traced >= %d untraced (48 tracepoints x %d cycles/hit must slow the data path)",
			traced.completed, base.completed, trace.CyclesPerHit)
	}
}

// TestAnalyzerTapZeroCost: the netsim passive taps charge no simulated
// cost and perturb nothing — the tapped run is bit-identical to the bare
// run, down to per-engine event counts.
func TestAnalyzerTapZeroCost(t *testing.T) {
	bare := runCostProbe(false, false)
	tapped := runCostProbe(false, true)
	if bare.completed != tapped.completed || bare.rxSegs != tapped.rxSegs || bare.txSegs != tapped.txSegs {
		t.Fatalf("taps perturbed the run: bare %+v, tapped %+v", bare, tapped)
	}
	if len(bare.events) != len(tapped.events) {
		t.Fatalf("engine counts differ: %v vs %v", bare.events, tapped.events)
	}
	for i := range bare.events {
		if bare.events[i] != tapped.events[i] {
			t.Fatalf("engine %d processed %d events bare, %d tapped", i, bare.events[i], tapped.events[i])
		}
	}
}

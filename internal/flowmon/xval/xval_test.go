package xval

import (
	"testing"

	"flextoe/internal/testbed"
)

// requireActive fails unless the scenario exercised the counters under
// validation — a pass with nothing to compare proves nothing.
func requireActive(t *testing.T, r *Result) {
	t.Helper()
	if r.SinkBytes == 0 {
		t.Fatal("no payload delivered: scenario is inert")
	}
	byName := map[string]Check{}
	for _, c := range r.Checks {
		byName[c.Name] = c
	}
	if byName["retx-segs"].Stack == 0 {
		t.Fatal("no retransmissions: loss scenario is inert")
	}
	if byName["ooo-accepts"].Stack == 0 {
		t.Fatal("no out-of-order segments: loss scenario is inert")
	}
	if byName["dupacks"].Stack == 0 {
		t.Fatal("no duplicate acks: loss scenario is inert")
	}
}

func TestCrossValidateFlexTOE(t *testing.T) {
	r := Run(Scenario{Personality: testbed.FlexTOE})
	if !r.Pass() {
		t.Fatalf("cross-validation failed:\n%s", r.Format())
	}
	requireActive(t, r)
	// At trace loss rates the sender-side and receiver-side inferences
	// are exact, not merely within tolerance.
	for _, c := range r.Checks {
		if c.Name != "dupacks" && c.Diff() != 0 {
			t.Errorf("%s: analyzer %d != stack %d (exact at trace loss)",
				c.Name, c.Analyzer, c.Stack)
		}
	}
}

func TestCrossValidateLinux(t *testing.T) {
	r := Run(Scenario{Personality: testbed.Linux})
	if !r.Pass() {
		t.Fatalf("cross-validation failed:\n%s", r.Format())
	}
	requireActive(t, r)
}

func TestCrossValidateHighLoss(t *testing.T) {
	for _, k := range []testbed.StackKind{testbed.FlexTOE, testbed.Linux} {
		r := Run(Scenario{Personality: k, Loss: 0.01})
		if !r.Pass() {
			t.Errorf("%s at 1%% loss:\n%s", k, r.Format())
		}
	}
}

func TestCrossValidateDeterminism(t *testing.T) {
	sc := Scenario{Personality: testbed.FlexTOE}
	r1, r2 := Run(sc), Run(sc)
	if f1, f2 := r1.Format(), r2.Format(); f1 != f2 {
		t.Fatalf("reruns differ:\n%s\n---\n%s", f1, f2)
	}
	if f1, f2 := r1.ClientReport.Format(), r2.ClientReport.Format(); f1 != f2 {
		t.Fatalf("analyzer reports differ across reruns:\n%s\n---\n%s", f1, f2)
	}
}

// TestTapsDoNotPerturbSimulation is the observation-only contract: the
// same scenario with and without analyzers attached delivers exactly the
// same bytes and stack counters.
func TestTapsDoNotPerturbSimulation(t *testing.T) {
	with := Run(Scenario{Personality: testbed.FlexTOE})
	bare := runBare(Scenario{Personality: testbed.FlexTOE})
	if with.SinkBytes != bare.sinkBytes {
		t.Fatalf("taps perturbed delivery: %d with, %d without",
			with.SinkBytes, bare.sinkBytes)
	}
	for _, c := range with.Checks {
		if want, ok := bare.truth[c.Name]; ok && c.Stack != want {
			t.Fatalf("taps perturbed stack counter %s: %d with, %d without",
				c.Name, c.Stack, want)
		}
	}
}

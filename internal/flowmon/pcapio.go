package flowmon

import (
	"io"

	"flextoe/internal/packet"
	"flextoe/internal/pcap"
)

// FeedPCAP streams a capture through the analyzer — the same code path
// the live taps drive, so captures from real tools round-trip through
// identical inference. Undecodable records are skipped and counted;
// a truncated final record ends the stream cleanly (pcap.Reader).
// Returns the number of records analyzed and skipped.
func FeedPCAP(r io.Reader, a *Analyzer) (fed, skipped int, err error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return 0, 0, err
	}
	var pkt packet.Packet
	for {
		rec, rerr := pr.Next()
		if rerr == io.EOF {
			return fed, skipped, nil
		}
		if rerr != nil {
			return fed, skipped, rerr
		}
		if derr := pkt.DecodeInto(rec.Data); derr != nil {
			skipped++
			continue
		}
		a.Observe(rec.Time, &pkt)
		fed++
	}
}

package flowmon

import (
	"fmt"
	"strings"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// FlowReport is the readout snapshot of one directed flow.
type FlowReport struct {
	Flow    packet.Flow
	FirstAt sim.Time
	LastAt  sim.Time

	Pkts     uint64
	DataSegs uint64

	// Sender-side inference (data this flow carries).
	AckedBytes   uint64
	RetxSegs     uint64
	RetxBytes    uint64
	RetxGBNSegs  uint64
	RetxGBNBytes uint64
	RetxSelSegs  uint64
	RetxSelBytes uint64
	DupAcks      uint64
	DupAckRunMax uint32

	// RTT at the tap (microseconds). RTTN == 0 means no samples.
	RTTN     uint64
	RTTMinUs uint32
	RTTMaxUs uint32
	RTTSumUs uint64

	// Receiver-side emulation.
	OOOAccepts uint64
	OOODrops   uint64
	OOOMerges  uint64

	ZeroWinEvents uint64
	ZeroWinStall  sim.Time
	CEPkts        uint64
	ECEPkts       uint64

	// Timeline holds acked bytes per Config.TimelineBin for the flow's
	// first 32 bins (later traffic clamps into the last).
	Timeline [flowBins]uint32
}

// RTTMeanUs returns the mean RTT sample in microseconds (0 when none).
func (f *FlowReport) RTTMeanUs() float64 {
	if f.RTTN == 0 {
		return 0
	}
	return float64(f.RTTSumUs) / float64(f.RTTN)
}

// GoodputBps returns acked payload bits per second over the flow's
// observed lifetime (0 when the flow spans no time).
func (f *FlowReport) GoodputBps() float64 {
	d := f.LastAt - f.FirstAt
	if d <= 0 {
		return 0
	}
	return float64(f.AckedBytes) * 8 / d.Seconds()
}

// Report is an analyzer (or fleet) readout: per-flow snapshots in
// first-seen order plus merged fleet-wide statistics.
//
// Inference tolerances — asserted by the xval harness, documented here
// for consumers comparing against stack ground truth:
//
//   - Retransmitted segments/bytes are exact at a sender-side tap: every
//     transmitted byte crosses it, and the SendNext criterion is the
//     same high-water rule the stacks count with.
//   - OOO accepts/drops are exact at a receiver-side tap while the
//     receive window never forces a trim: the emulation replays the
//     stack's interval-set logic but cannot see buffer occupancy.
//   - Duplicate-ACK counts can diverge by a bounded amount around
//     recovery episodes: the stack's in-flight accounting (TxSent,
//     SND.NXT rewinds) resets where the wire-level SendNext model does
//     not, and acks landing between a tap and the stack's deferred
//     processing race new transmissions. Spurious RTOs are invisible to
//     a passive observer by nature.
type Report struct {
	Flows []FlowReport

	Pkts         uint64
	NonTCP       uint64
	FlowsDropped uint64

	RTTHist  *stats.LinearHist // microsecond buckets
	OOODepth *stats.LinearHist // interval-set size per reassembly event

	TimelineBin sim.Time
	Timeline    []uint64 // acked bytes per bin, all flows
}

// Report snapshots the analyzer in establishment (first-seen) order.
func (a *Analyzer) Report() *Report {
	r := &Report{
		Flows:        make([]FlowReport, 0, len(a.order)),
		Pkts:         a.Pkts,
		NonTCP:       a.NonTCP,
		FlowsDropped: a.FlowsDropped,
		RTTHist:      stats.NewLinearHist(a.cfg.RTTMaxUs),
		OOODepth:     stats.NewLinearHist(oooMax),
		TimelineBin:  a.cfg.TimelineBin,
		Timeline:     make([]uint64, len(a.timeline)),
	}
	r.RTTHist.Add(a.rttHist)
	r.OOODepth.Add(a.oooDepth)
	copy(r.Timeline, a.timeline)
	for _, slot := range a.order {
		fs := a.at(slot)
		fr := FlowReport{
			Flow:          fs.flow,
			FirstAt:       fs.firstAt,
			LastAt:        fs.lastAt,
			Pkts:          fs.pkts,
			DataSegs:      fs.dataSegs,
			AckedBytes:    fs.ackedBytes,
			RetxSegs:      fs.retxSegs,
			RetxBytes:     fs.retxBytes,
			RetxGBNSegs:   fs.retxGBNSegs,
			RetxGBNBytes:  fs.retxGBNBytes,
			RetxSelSegs:   fs.retxSelSegs,
			RetxSelBytes:  fs.retxSelBytes,
			DupAcks:       fs.dupAcks,
			DupAckRunMax:  fs.dupRunMax,
			RTTN:          fs.rttN,
			RTTMaxUs:      fs.rttMaxUs,
			RTTSumUs:      fs.rttSumUs,
			OOOAccepts:    fs.oooAccepts,
			OOODrops:      fs.oooDrops,
			OOOMerges:     fs.oooMerges,
			ZeroWinEvents: fs.zeroWinEvents,
			ZeroWinStall:  fs.zeroWinStall,
			CEPkts:        fs.cePkts,
			ECEPkts:       fs.ecePkts,
			Timeline:      fs.timeline,
		}
		if fs.rttN > 0 {
			fr.RTTMinUs = fs.rttMinUs
		}
		if fs.flags&fsZeroWin != 0 {
			// Still stalled at readout: charge the open-ended stall.
			fr.ZeroWinStall += fs.lastAt - fs.zeroSince
		}
		r.Flows = append(r.Flows, fr)
	}
	return r
}

// Totals sums the sender-side inference counters across every flow in
// the report — the numbers cross-validated against stack counters.
type Totals struct {
	Flows         uint64
	Pkts          uint64
	DataSegs      uint64
	AckedBytes    uint64
	RetxSegs      uint64
	RetxBytes     uint64
	RetxGBNBytes  uint64
	RetxSelBytes  uint64
	DupAcks       uint64
	OOOAccepts    uint64
	OOODrops      uint64
	ZeroWinEvents uint64
	CEPkts        uint64

	// RTT samples merged across flows (microseconds at the tap).
	RTTN     uint64
	RTTSumUs uint64
	RTTMaxUs uint32
}

// add accumulates one flow snapshot.
func (t *Totals) add(f *FlowReport) {
	t.Flows++
	t.Pkts += f.Pkts
	t.DataSegs += f.DataSegs
	t.AckedBytes += f.AckedBytes
	t.RetxSegs += f.RetxSegs
	t.RetxBytes += f.RetxBytes
	t.RetxGBNBytes += f.RetxGBNBytes
	t.RetxSelBytes += f.RetxSelBytes
	t.DupAcks += f.DupAcks
	t.OOOAccepts += f.OOOAccepts
	t.OOODrops += f.OOODrops
	t.ZeroWinEvents += f.ZeroWinEvents
	t.CEPkts += f.CEPkts
	t.RTTN += f.RTTN
	t.RTTSumUs += f.RTTSumUs
	if f.RTTMaxUs > t.RTTMaxUs {
		t.RTTMaxUs = f.RTTMaxUs
	}
}

// RTTMeanUs returns the mean of the merged RTT samples (0 when none).
func (t *Totals) RTTMeanUs() float64 {
	if t.RTTN == 0 {
		return 0
	}
	return float64(t.RTTSumUs) / float64(t.RTTN)
}

// Totals aggregates the report's flows.
func (r *Report) Totals() Totals {
	var t Totals
	for i := range r.Flows {
		t.add(&r.Flows[i])
	}
	return t
}

// GroupTotals partitions the report's flows into n groups by key and
// returns per-group totals: out[k] sums every flow whose key(f) == k.
// Flows keyed outside [0,n) are skipped. The canonical grouping is the
// per-spine split: key = Flow.Hash() % spines, the same CRC-32 the
// fabric's ECMP stage uses to pick an uplink, so group k holds exactly
// the directed flows whose data crossed spine k.
func (r *Report) GroupTotals(n int, key func(*FlowReport) int) []Totals {
	out := make([]Totals, n)
	for i := range r.Flows {
		f := &r.Flows[i]
		k := key(f)
		if k < 0 || k >= n {
			continue
		}
		out[k].add(f)
	}
	return out
}

// Format renders the report as aligned text, one flow per line plus the
// fleet summary — byte-identical across reruns by construction.
func (r *Report) Format() string {
	var b strings.Builder
	t := r.Totals()
	fmt.Fprintf(&b, "flows %d  pkts %d  non-tcp %d  dropped-flows %d\n",
		len(r.Flows), r.Pkts, r.NonTCP, r.FlowsDropped)
	fmt.Fprintf(&b, "data-segs %d  acked %d B  retx %d segs / %d B (gbn %d B, sel %d B)\n",
		t.DataSegs, t.AckedBytes, t.RetxSegs, t.RetxBytes, t.RetxGBNBytes, t.RetxSelBytes)
	fmt.Fprintf(&b, "dupacks %d  ooo-accepts %d  ooo-drops %d  zero-win %d  ce %d\n",
		t.DupAcks, t.OOOAccepts, t.OOODrops, t.ZeroWinEvents, t.CEPkts)
	if n := r.RTTHist.Count(); n > 0 {
		fmt.Fprintf(&b, "rtt samples %d  min/p50/p99/max %d/%d/%d/%d us\n",
			n, r.RTTHist.Quantile(0), r.RTTHist.Quantile(0.5),
			r.RTTHist.Quantile(0.99), r.RTTHist.MaxSeen())
	}
	for i := range r.Flows {
		f := &r.Flows[i]
		fmt.Fprintf(&b, "  %v:%d > %v:%d  pkts %d  acked %d  retx %d/%dB  dup %d  ooo %d/%d  rtt(n=%d mean=%.1fus)\n",
			f.Flow.SrcIP, f.Flow.SrcPort, f.Flow.DstIP, f.Flow.DstPort,
			f.Pkts, f.AckedBytes, f.RetxSegs, f.RetxBytes, f.DupAcks,
			f.OOOAccepts, f.OOODrops, f.RTTN, f.RTTMeanUs())
	}
	return b.String()
}

// Fleet merges per-shard analyzers at readout, in attach order — the
// sharding contract's deterministic merge (doc.go). Each analyzer
// remains single-tap/single-shard; the fleet never touches them during
// a run.
type Fleet struct {
	mons []*Analyzer
}

// Add appends an analyzer to the fleet.
func (fl *Fleet) Add(a *Analyzer) { fl.mons = append(fl.mons, a) }

// Analyzers returns the attached analyzers in attach order.
func (fl *Fleet) Analyzers() []*Analyzer { return fl.mons }

// Report merges every analyzer's readout in attach order: flow lists
// concatenate (each in its own establishment order), histograms and
// counters sum. Flows observed by two taps (e.g. both endpoints' NICs)
// appear once per tap — vantage points are kept, not fused.
func (fl *Fleet) Report() *Report {
	if len(fl.mons) == 0 {
		return &Report{RTTHist: stats.NewLinearHist(0), OOODepth: stats.NewLinearHist(0)}
	}
	r := fl.mons[0].Report()
	for _, a := range fl.mons[1:] {
		o := a.Report()
		r.Flows = append(r.Flows, o.Flows...)
		r.Pkts += o.Pkts
		r.NonTCP += o.NonTCP
		r.FlowsDropped += o.FlowsDropped
		r.RTTHist.Add(o.RTTHist)
		r.OOODepth.Add(o.OOODepth)
		if len(o.Timeline) > len(r.Timeline) {
			r.Timeline, o.Timeline = o.Timeline, r.Timeline
		}
		for i, v := range o.Timeline {
			r.Timeline[i] += v
		}
	}
	return r
}

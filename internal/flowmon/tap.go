package flowmon

import (
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

// Attach wires the analyzer to both directions of a netsim interface:
// TxTap sees what the host sends (at send time), RxTap what it receives
// (at delivery). The taps are zero simulated cost and take no ownership;
// each packet crosses the NIC exactly once, so nothing double-counts.
// One analyzer per interface keeps state on the interface's shard.
func Attach(a *Analyzer, ifc *netsim.Iface) {
	ifc.TxTap = a.Observe
	ifc.RxTap = a.Observe
}

// toeTap adapts the analyzer to core.TOE.PacketTap without a per-packet
// closure: the carrier pins the engine whose clock stamps observations.
type toeTap struct {
	a   *Analyzer
	eng *sim.Engine
}

func (t *toeTap) observe(dir string, pkt *packet.Packet) {
	t.a.Observe(t.eng.Now(), pkt)
}

// TOETap returns a function with the core.TOE.PacketTap signature that
// feeds the analyzer. Unlike the netsim taps, a TOE tap models an
// on-NIC capture: the TOE charges PacketTapCost cycles per packet when
// any tap is installed.
func TOETap(eng *sim.Engine, a *Analyzer) func(dir string, pkt *packet.Packet) {
	t := &toeTap{a: a, eng: eng}
	return t.observe
}

package sched

import (
	"testing"

	"flextoe/internal/sim"
)

func TestUncongestedRoundRobin(t *testing.T) {
	eng := sim.New()
	c := New(eng, 2*sim.Microsecond, 1024)
	c.Submit(1)
	c.Submit(2)
	c.Submit(3)
	var order []uint32
	for {
		id, ok := c.Next(1448)
		if !ok {
			break
		}
		order = append(order, id)
		// Re-submit each flow once, emulating "still has data".
		if len(order) <= 3 {
			c.Submit(id)
		}
	}
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// First three pops are FIFO; second round repeats the rotation.
	want := []uint32{1, 2, 3, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDuplicateSubmitIgnored(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 64)
	c.Submit(7)
	c.Submit(7)
	c.Submit(7)
	n := 0
	for {
		if _, ok := c.Next(100); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("flow popped %d times", n)
	}
}

func TestRateConformance(t *testing.T) {
	// A flow paced at 1000 ps/byte sending 1000-byte bursts must emerge
	// once per microsecond.
	eng := sim.New()
	c := New(eng, sim.Microsecond/2, 4096)
	c.SetInterval(5, 1000*sim.Picosecond)
	c.Submit(5)

	var sendTimes []sim.Time
	var pump func()
	pump = func() {
		for {
			id, ok := c.Next(1000)
			if !ok {
				break
			}
			sendTimes = append(sendTimes, eng.Now())
			if len(sendTimes) >= 10 {
				return
			}
			c.Submit(id)
		}
		if dl, ok := c.NextDeadline(); ok {
			eng.At(dl, pump)
		}
	}
	eng.At(0, pump)
	eng.Run()

	if len(sendTimes) != 10 {
		t.Fatalf("sends = %d", len(sendTimes))
	}
	total := sendTimes[len(sendTimes)-1] - sendTimes[0]
	// 9 intervals of 1us each, quantized by the half-us wheel.
	if total < 8*sim.Microsecond || total > 11*sim.Microsecond {
		t.Fatalf("10 sends spread over %v", total)
	}
}

func TestRateChangeTakesEffect(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 1024)
	c.SetInterval(1, 10*sim.Nanosecond)
	c.Submit(1)
	id, ok := c.Next(100) // charges 1us
	if !ok || id != 1 {
		t.Fatal("first pop failed")
	}
	// Uncongest the flow: immediate eligibility on next submit, even
	// though the pacer deadline is in the future.
	c.SetInterval(1, 0)
	c.Submit(1)
	if _, ok := c.Next(100); !ok {
		t.Fatal("uncongested flow not immediately eligible")
	}
}

func TestWheelDefersRateLimitedFlow(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 1024)
	c.SetInterval(9, 100*sim.Nanosecond) // 100ns/byte
	c.Submit(9)
	if _, ok := c.Next(1000); !ok { // charges 100us
		t.Fatal("first send refused")
	}
	c.Submit(9)
	if _, ok := c.Next(1000); ok {
		t.Fatal("flow eligible before pacing deadline")
	}
	dl, ok := c.NextDeadline()
	if !ok {
		t.Fatal("no deadline despite queued flow")
	}
	if dl < 99*sim.Microsecond || dl > 102*sim.Microsecond {
		t.Fatalf("deadline = %v", dl)
	}
	eng.At(dl, func() {
		if _, ok := c.Next(1000); !ok {
			t.Error("flow not eligible at deadline")
		}
	})
	eng.Run()
}

func TestHorizonClamp(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 16) // 16us horizon
	c.SetInterval(3, sim.Millisecond)  // absurdly slow: 1ms/byte
	c.Submit(3)
	c.Next(1000) // deadline 1 second out
	c.Submit(3)
	dl, ok := c.NextDeadline()
	if !ok {
		t.Fatal("no deadline")
	}
	if dl > c.Horizon()+sim.Microsecond {
		t.Fatalf("deadline %v beyond horizon %v", dl, c.Horizon())
	}
}

func TestRemove(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 64)
	c.Submit(1)
	c.Submit(2)
	c.Remove(1)
	id, ok := c.Next(100)
	if !ok || id != 2 {
		t.Fatalf("Next = %d, %v", id, ok)
	}
	if _, ok := c.Next(100); ok {
		t.Fatal("removed flow still scheduled")
	}
}

func TestRemoveWhileInWheel(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 64)
	c.SetInterval(4, 100*sim.Nanosecond)
	c.Submit(4)
	c.Next(1000)
	c.Submit(4) // now in wheel
	c.Remove(4)
	eng.At(200*sim.Microsecond, func() {
		if _, ok := c.Next(100); ok {
			t.Error("removed flow emerged from wheel")
		}
	})
	eng.Run()
}

func TestPending(t *testing.T) {
	eng := sim.New()
	c := New(eng, sim.Microsecond, 64)
	c.Submit(1)
	c.Submit(2)
	if c.Pending() != 2 {
		t.Fatalf("pending = %d", c.Pending())
	}
	c.Next(100)
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestManyFlowsFairShare(t *testing.T) {
	// 64 uncongested flows pumped for many rounds each get equal service.
	eng := sim.New()
	c := New(eng, sim.Microsecond, 1024)
	counts := make(map[uint32]int)
	for id := uint32(0); id < 64; id++ {
		c.Submit(id)
	}
	for i := 0; i < 64*100; i++ {
		id, ok := c.Next(1448)
		if !ok {
			t.Fatalf("starved at %d", i)
		}
		counts[id]++
		c.Submit(id)
	}
	for id, n := range counts {
		if n != 100 {
			t.Fatalf("flow %d served %d times", id, n)
		}
	}
}

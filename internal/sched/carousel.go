// Package sched implements FlexTOE's work-conserving flow scheduler
// (§3.4), based on Carousel [53]: a time wheel of hardware queues for
// rate-limited flows plus a round-robin active list that bypasses the
// rate limiter for uncongested flows.
//
// Rates arrive from the control plane pre-converted to time-per-byte
// intervals, because the NFP-4000 has no divide unit: the data-path
// computes deadlines with a single multiplication (§3.4).
package sched

import "flextoe/internal/sim"

// Carousel schedules flows by connection index.
type Carousel struct {
	eng      *sim.Engine
	gran     sim.Time // slot granularity
	wheel    [][]uint32
	cur      int      // slot under the hand
	hand     sim.Time // time at the start of the current slot
	handInit bool

	// Round-robin list: due and uncongested flows. Consumed from rrHead
	// and compacted periodically so the backing array recycles instead of
	// reallocating on every append (the old head-slicing grew a fresh
	// array per wheel rotation).
	rr     []uint32
	rrHead int

	// wheelItems counts entries sitting in wheel slots (including stale
	// ones not yet drained), so NextDeadline's slot scan — 4096 probes —
	// only runs when something is actually rate-limited.
	wheelItems int

	state map[uint32]*flowState

	// Statistics.
	Scheduled uint64 // wheel insertions
	Bypassed  uint64 // RR insertions
}

type flowState struct {
	inWheel  bool
	inRR     bool
	interval sim.Time // ps per byte; 0 = uncongested (bypass)
	nextSend sim.Time // earliest next transmission (rate conformance)
}

// New creates a wheel with the given slot granularity and slot count. The
// horizon is gran*slots; deadlines beyond it clamp to the furthest slot.
func New(eng *sim.Engine, gran sim.Time, slots int) *Carousel {
	if gran <= 0 || slots <= 0 {
		panic("sched: bad wheel geometry")
	}
	return &Carousel{
		eng:   eng,
		gran:  gran,
		wheel: make([][]uint32, slots),
		state: make(map[uint32]*flowState),
	}
}

// Horizon returns the wheel's reach.
func (c *Carousel) Horizon() sim.Time { return c.gran * sim.Time(len(c.wheel)) }

func (c *Carousel) flow(id uint32) *flowState {
	st := c.state[id]
	if st == nil {
		st = &flowState{}
		c.state[id] = st
	}
	return st
}

// SetInterval programs a flow's pacing interval in time-per-byte (the
// control plane's cycles/byte, pre-divided). 0 removes the rate limit.
func (c *Carousel) SetInterval(id uint32, perByte sim.Time) {
	c.flow(id).interval = perByte
}

// Interval returns the flow's programmed pacing interval.
func (c *Carousel) Interval(id uint32) sim.Time {
	if st := c.state[id]; st != nil {
		return st.interval
	}
	return 0
}

// Submit makes a flow eligible for transmission: uncongested flows join
// the round-robin list; rate-limited flows enter the wheel at their next
// conforming deadline. Duplicate submissions are ignored (§3.4: the
// scheduler only tracks whether a flow has data and quota).
func (c *Carousel) Submit(id uint32) {
	st := c.flow(id)
	if st.inWheel || st.inRR {
		return
	}
	now := c.eng.Now()
	c.advanceHand(now)
	if st.interval == 0 || st.nextSend <= now {
		st.inRR = true
		c.rr = append(c.rr, id)
		c.Bypassed++
		return
	}
	// A flow in slot k becomes ready when the hand passes it, at
	// hand+(k+1)*gran; pick the first slot whose collection time covers
	// the deadline.
	slots := int((st.nextSend-c.hand+c.gran-1)/c.gran) - 1
	if slots < 0 {
		slots = 0
	}
	if slots >= len(c.wheel) {
		slots = len(c.wheel) - 1
	}
	idx := (c.cur + slots) % len(c.wheel)
	c.wheel[idx] = append(c.wheel[idx], id)
	c.wheelItems++
	st.inWheel = true
	c.Scheduled++
}

// advanceHand rotates the wheel so the hand covers now, collecting due
// flows into the round-robin ready list. Note the order of flows within a
// slot is not preserved relative to sub-slot deadlines, matching the
// hardware-queue implementation (§4).
func (c *Carousel) advanceHand(now sim.Time) {
	if !c.handInit {
		c.hand = now - now%c.gran
		c.handInit = true
		return
	}
	for c.hand+c.gran <= now {
		due := c.wheel[c.cur]
		if len(due) > 0 {
			c.wheel[c.cur] = nil
			c.wheelItems -= len(due)
			for _, id := range due {
				st, ok := c.state[id]
				if !ok || !st.inWheel {
					continue // removed while queued
				}
				st.inWheel = false
				st.inRR = true
				c.rr = append(c.rr, id)
			}
		}
		c.cur = (c.cur + 1) % len(c.wheel)
		c.hand += c.gran
	}
}

// Next pops the next flow eligible to send one burst of n bytes. It
// charges the flow's rate limiter for those bytes and reports false when
// nothing is eligible now. The caller re-Submits the flow if it still has
// data and quota after transmitting; re-submission lands at the charged
// deadline, which is how rate conformance emerges.
func (c *Carousel) Next(bytes uint32) (uint32, bool) {
	now := c.eng.Now()
	c.advanceHand(now)
	for c.rrHead < len(c.rr) {
		id := c.rr[c.rrHead]
		c.rrHead++
		if c.rrHead == len(c.rr) {
			c.rr = c.rr[:0]
			c.rrHead = 0
		} else if c.rrHead > 64 && c.rrHead*2 >= len(c.rr) {
			n := copy(c.rr, c.rr[c.rrHead:])
			c.rr = c.rr[:n]
			c.rrHead = 0
		}
		st, ok := c.state[id]
		if !ok || !st.inRR {
			continue // removed while queued
		}
		st.inRR = false
		if st.interval > 0 {
			base := st.nextSend
			if base < now {
				base = now
			}
			st.nextSend = base + sim.Time(bytes)*st.interval
		}
		return id, true
	}
	return 0, false
}

// NextDeadline returns the earliest instant the scheduler will have work,
// so the transmit pump can sleep precisely. ok is false when the
// scheduler is empty.
func (c *Carousel) NextDeadline() (sim.Time, bool) {
	c.advanceHand(c.eng.Now())
	if c.rrHead < len(c.rr) {
		return c.eng.Now(), true
	}
	if c.wheelItems == 0 {
		return 0, false
	}
	for i := 0; i < len(c.wheel); i++ {
		idx := (c.cur + i) % len(c.wheel)
		if len(c.wheel[idx]) > 0 {
			return c.hand + sim.Time(i+1)*c.gran, true
		}
	}
	return 0, false
}

// Pending returns the number of flows waiting (wheel + RR).
func (c *Carousel) Pending() int {
	n := 0
	//flexvet:ordered pure count over the map; the result is order-insensitive
	for _, st := range c.state {
		if st.inWheel || st.inRR {
			n++
		}
	}
	return n
}

// Remove drops a flow entirely (connection teardown). Stale wheel or RR
// entries are skipped when encountered.
func (c *Carousel) Remove(id uint32) {
	delete(c.state, id)
}

// Splicing: the paper's Listing 1 — AccelTCP-style connection splicing in
// 24 lines of eBPF, loaded into a FlexTOE data-path as an XDP program.
// A traffic generator streams MTU frames at a proxy; the program patches
// headers (MACs, IPs, ports, seq/ack deltas) and transmits out the MAC
// without host involvement.
package main

import (
	"fmt"

	"flextoe/internal/ebpf"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

func main() {
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "proxy", Kind: testbed.FlexTOE, Cores: 2, Seed: 1},
		testbed.MachineSpec{Name: "gen", Kind: testbed.FlexTOE, Cores: 2, Seed: 2},
		testbed.MachineSpec{Name: "sink", Kind: testbed.FlexTOE, Cores: 2, Seed: 3},
	)
	proxy, gen, sink := tb.M("proxy"), tb.M("gen"), tb.M("sink")

	// Assemble and verify Listing 1, then attach it at the XDP hook.
	vm := ebpf.NewVM()
	tbl := ebpf.NewSpliceTable()
	prog, err := ebpf.SpliceProgram(vm, tbl)
	if err != nil {
		panic(err)
	}
	xp, err := ebpf.LoadXDP("splice", vm, prog)
	if err != nil {
		panic(err)
	}
	proxy.TOE.AttachXDP(xp)
	fmt.Printf("splice program: %d instructions, verified\n", len(prog))

	// The control plane installs one splice: gen:5000->proxy:80 rewrites
	// to sink:8080 with seq/ack deltas of 0.
	key := ebpf.SpliceKey(uint32(gen.IP), uint32(proxy.IP), 5000, 80)
	val := ebpf.SpliceValue(sink.MAC, uint32(sink.IP), 6000, 8080, 0, 0)
	if err := tbl.Update(key, val); err != nil {
		panic(err)
	}

	// Count spliced frames arriving at the sink.
	received := 0
	origRecv := sink.Iface.Recv
	sink.Iface.Recv = func(f *netsim.Frame) {
		if f.Pkt.TCP.DstPort == 8080 {
			received++
		}
		origRecv(f)
	}

	// Stream MTU-sized frames from the generator.
	frame := &packet.Packet{
		Eth:     packet.Ethernet{Src: gen.MAC, Dst: proxy.MAC, EtherType: packet.EtherTypeIPv4},
		IP:      packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: gen.IP, Dst: proxy.IP},
		TCP:     packet.TCP{SrcPort: 5000, DstPort: 80, Flags: packet.FlagACK | packet.FlagPSH, WScale: -1},
		Payload: make([]byte, 1448),
	}
	gap := sim.Time(float64(frame.WireLen()) / netsim.GbpsToBytesPerSec(40) * 1e12)
	const dur = 5 * sim.Millisecond
	tb.Eng.Every(0, gap, func() bool {
		if tb.Eng.Now() >= dur {
			return false
		}
		gen.Iface.Send(netsim.NewFrame(frame, tb.Eng.Now()))
		return true
	})
	tb.Run(dur + sim.Millisecond)

	fmt.Printf("spliced at %.2f Mpps (%d frames forwarded, %d received at sink)\n",
		float64(proxy.TOE.XDPTx)/dur.Seconds()/1e6, proxy.TOE.XDPTx, received)

	// A FIN tears the splice down and redirects to the control plane.
	fin := *frame
	fin.TCP.Flags |= packet.FlagFIN
	gen.Iface.Send(netsim.NewFrame(&fin, tb.Eng.Now()))
	tb.Run(tb.Eng.Now() + sim.Millisecond)
	fmt.Printf("after FIN: map entries=%d, redirects to control plane=%d\n",
		tbl.Len(), proxy.TOE.XDPRedirects)
}

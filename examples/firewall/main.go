// Firewall: data-path packet filtering and capture — two of the §2.1
// feature list items. A firewall module drops blacklisted sources inside
// the FlexTOE pipeline while a tcpdump-style tap writes a pcap file of
// the surviving traffic.
package main

import (
	"fmt"
	"os"

	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/pcap"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
	"flextoe/internal/xdp"
)

func main() {
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 2, Seed: 1},
		testbed.MachineSpec{Name: "good", Kind: testbed.FlexTOE, Cores: 2, Seed: 2},
		testbed.MachineSpec{Name: "evil", Kind: testbed.FlexTOE, Cores: 2, Seed: 3},
	)
	server := tb.M("server")

	// Firewall module with control-plane-managed blacklist.
	fw := xdp.NewFirewall()
	fw.Block(uint32(tb.M("evil").IP))
	server.TOE.AttachXDP(fw)

	// tcpdump: capture SYNs and data to port 7777 into a pcap file.
	f, err := os.CreateTemp("", "flextoe-*.pcap")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	w, err := pcap.NewWriter(f)
	if err != nil {
		panic(err)
	}
	filter := &pcap.Filter{DstPort: 7777}
	server.TOE.PacketTapCost = 300
	server.TOE.PacketTap = func(dir string, pkt *packet.Packet) {
		if dir == "rx" && filter.Match(pkt) {
			w.WritePacket(tb.Eng.Now(), pkt)
		}
	}

	srv := &apps.RPCServer{ReqSize: 64}
	srv.Serve(server.Stack, 7777)

	good := &apps.ClosedLoopClient{ReqSize: 64}
	good.Start(tb.M("good").Stack, tb.Addr("server", 7777), 2)
	evilClient := &apps.ClosedLoopClient{ReqSize: 64}
	evilClient.Start(tb.M("evil").Stack, tb.Addr("server", 7777), 2)

	tb.Run(20 * sim.Millisecond)

	fmt.Printf("good client completed: %d RPCs\n", good.Completed)
	fmt.Printf("evil client completed: %d RPCs (blackholed at the firewall)\n", evilClient.Completed)
	fmt.Printf("firewall drops:        %d packets\n", fw.Dropped)
	fmt.Printf("pcap capture:          %d packets -> %s\n", w.Packets, f.Name())

	// Read the capture back and verify every packet passes the filter.
	if _, err := f.Seek(0, 0); err != nil {
		panic(err)
	}
	r, err := pcap.NewReader(f)
	if err != nil {
		panic(err)
	}
	n := 0
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		p, err := packet.Decode(rec.Data)
		if err != nil || !filter.Match(p) {
			panic("capture contains non-matching packet")
		}
		n++
	}
	fmt.Printf("capture verified:      %d records decode and match the filter\n", n)
}

// Quickstart: two machines running FlexTOE exchange RPCs over the
// simulated fabric. Demonstrates the full stack: handshake via the
// control plane, data-path offload through the five-stage pipeline, and
// the libTOE socket API.
package main

import (
	"fmt"

	"flextoe/internal/api"
	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

func main() {
	// Build a two-machine cluster on one 40G switch.
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, Seed: 1},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, Seed: 2},
	)

	// A plain echo server on port 7777.
	server := tb.M("server").Stack
	server.Listen(7777, func(sock api.Socket) {
		buf := make([]byte, 4096)
		sock.OnReadable(func() {
			for {
				n := sock.Recv(buf)
				if n == 0 {
					return
				}
				sock.Send(buf[:n])
			}
		})
	})

	// A closed-loop client measuring RPC latency.
	client := &apps.ClosedLoopClient{ReqSize: 64}
	client.Start(tb.M("client").Stack, tb.Addr("server", 7777), 4)

	// Run 50 simulated milliseconds.
	tb.Run(50 * sim.Millisecond)

	toe := tb.M("server").TOE
	fmt.Printf("completed RPCs:    %d\n", client.Completed)
	fmt.Printf("median RTT:        %.1f us\n", float64(client.Latency.Percentile(50))/1e6)
	fmt.Printf("99.99p RTT:        %.1f us\n", float64(client.Latency.Percentile(99.99))/1e6)
	fmt.Printf("server data-path:  rx=%d segs, tx=%d segs, acks=%d\n",
		toe.RxSegs, toe.TxSegs, toe.AcksSent)
	fmt.Printf("connections:       %d established\n", tb.M("server").Ctrl.Established)
}

// Memcached: the §2.1 workload — a key-value store with 32 B keys and
// values under memtier-style load, comparing FlexTOE against the three
// baseline stacks on identical application code.
package main

import (
	"fmt"

	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

func main() {
	const dur = 30 * sim.Millisecond
	fmt.Println("memcached, 4 server cores, 32 connections, 10% SETs, 30 simulated ms")
	fmt.Printf("%-8s  %12s  %12s  %12s\n", "stack", "ops/sec", "p50 (us)", "p99 (us)")
	for _, kind := range testbed.AllStacks {
		tb := testbed.New(netsim.SwitchConfig{},
			testbed.MachineSpec{Name: "server", Kind: kind, Cores: 4, Seed: 1},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, Seed: 2},
		)
		kv := &apps.KVServer{AppCycles: 890, ValueLen: 32}
		kv.Serve(tb.M("server").Stack, 11211)
		cl := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Pipeline: 2, Seed: 3}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), 32)
		tb.Run(dur)
		fmt.Printf("%-8s  %12.0f  %12.1f  %12.1f\n", kind,
			float64(cl.Completed)/dur.Seconds(),
			float64(cl.Latency.Percentile(50))/1e6,
			float64(cl.Latency.Percentile(99))/1e6)
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment at
// Quick scale once per iteration and reports the headline metric; run
// cmd/flexbench -full for paper-scale sweeps. Per-core-count harness
// scaling curves (sharded engine / cell pool, PR 7) live in
// internal/experiments/bench_test.go (BenchmarkFig8SweepCores*,
// BenchmarkFig17IncastCores*) and in the scaling tables flexbench emits
// with -cores > 1.
package main

import (
	"testing"

	"flextoe/internal/experiments"
	"flextoe/internal/packet"
	"flextoe/internal/tcpseg"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := r.Run(experiments.Quick)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1CPUImpact regenerates Table 1: per-request CPU impact of
// TCP processing for Linux, Chelsio, TAS and FlexTOE.
func BenchmarkTable1CPUImpact(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Extensions regenerates Table 2: throughput with
// profiling, tcpdump, XDP and splicing extensions.
func BenchmarkTable2Extensions(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3ParallelismAblation regenerates Table 3: the five-step
// data-path parallelism breakdown.
func BenchmarkTable3ParallelismAblation(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Incast regenerates Table 4: congestion control under
// incast, on and off.
func BenchmarkTable4Incast(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5StatePartitioning verifies Table 5: per-stage connection
// state sizes.
func BenchmarkTable5StatePartitioning(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6TASBreakdown regenerates Table 6: TAS per-packet TCP/IP
// processing phases.
func BenchmarkTable6TASBreakdown(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig8MemcachedScalability regenerates Figure 8: memcached
// throughput vs server cores.
func BenchmarkFig8MemcachedScalability(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9LatencyCDF regenerates Figure 9: latency for all 16
// server/client stack combinations.
func BenchmarkFig9LatencyCDF(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10RPCThroughput regenerates Figure 10: RX/TX throughput at
// 250 and 1,000 cycles per RPC.
func BenchmarkFig10RPCThroughput(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11RPCLatency regenerates Figure 11: median/99p/99.99p RPC
// RTT vs message size.
func BenchmarkFig11RPCLatency(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12LargeRPC regenerates Figure 12: single-connection large
// RPC goodput, uni- and bidirectional.
func BenchmarkFig12LargeRPC(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13ConnScalability regenerates Figure 13: throughput vs
// number of established connections.
func BenchmarkFig13ConnScalability(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Generalization regenerates Figure 14: the BlueField and
// x86 ports across MSS values.
func BenchmarkFig14Generalization(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15LossRobustness regenerates Figure 15: throughput under
// injected packet loss.
func BenchmarkFig15LossRobustness(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16Fairness regenerates Figure 16: per-connection goodput
// distribution at line rate.
func BenchmarkFig16Fairness(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17Fabric regenerates Figure 17 (reproduction extension):
// incast fan-in × congestion control on the leaf-spine fabric, plus the
// ECMP spine-balance table.
func BenchmarkFig17Fabric(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig9ConnScale regenerates the Figure 9-style connection-scale
// sweep (reproduction extension): B/conn, idle timer cost, and active
// goodput vs idle fleet size, the Zipf-activity fleet, and the
// setup/teardown storm.
func BenchmarkFig9ConnScale(b *testing.B) { runExperiment(b, "fig9conn") }

// ---------------------------------------------------------------------
// Reassembly microbenchmarks: the protocol stage's RX hot path under
// in-order delivery, a single hole (the paper's N=1 sweet spot), and
// many concurrent holes (where only the multi-interval configuration
// keeps payload). One iteration reassembles a full 32 KB window.
// ---------------------------------------------------------------------

func benchReassembly(b *testing.B, oooCap uint8, skipEvery int) {
	const segN = 64
	const segSz = 512
	const winSz = segN * segSz
	b.ReportAllocs()
	b.SetBytes(winSz)
	for i := 0; i < b.N; i++ {
		st := &tcpseg.ProtoState{RxAvail: winSz, RemoteWin: winSz >> tcpseg.WindowScale, OOOCap: oooCap}
		post := &tcpseg.PostState{RxSize: winSz, TxSize: winSz}
		// First pass: deliver everything except the holes.
		for s := 0; s < segN; s++ {
			if skipEvery > 0 && s%skipEvery == 0 {
				continue
			}
			info := tcpseg.SegInfo{Seq: uint32(s * segSz), PayloadLen: segSz, Flags: packet.FlagACK}
			tcpseg.ProcessRX(st, post, &info, 0)
		}
		// Second pass: retransmissions fill the holes in order.
		for s := 0; s < segN; s++ {
			if !(skipEvery > 0 && s%skipEvery == 0) {
				continue
			}
			info := tcpseg.SegInfo{Seq: uint32(s * segSz), PayloadLen: segSz, Flags: packet.FlagACK}
			tcpseg.ProcessRX(st, post, &info, 0)
		}
		// Whatever a capacity-limited tracker dropped arrives again as
		// in-order retransmissions until the window closes.
		for st.Ack < winSz {
			info := tcpseg.SegInfo{Seq: st.Ack, PayloadLen: segSz, Flags: packet.FlagACK}
			tcpseg.ProcessRX(st, post, &info, 0)
		}
		if st.Ack != winSz || st.OOOCnt != 0 {
			b.Fatalf("window not reassembled: ack=%d ivs=%d", st.Ack, st.OOOCnt)
		}
	}
}

// BenchmarkReassemblyInOrder is the no-loss fast path.
func BenchmarkReassemblyInOrder(b *testing.B) { benchReassembly(b, 1, 0) }

// BenchmarkReassemblySingleHole drops one head segment: one interval
// suffices (the TAS/FlexTOE design point).
func BenchmarkReassemblySingleHoleN1(b *testing.B) { benchReassembly(b, 1, 64) }
func BenchmarkReassemblySingleHoleN4(b *testing.B) { benchReassembly(b, 4, 64) }

// BenchmarkReassemblyMultiHole drops every 8th segment: concurrent holes
// overflow a single interval and force drops + retransmissions at N=1.
func BenchmarkReassemblyMultiHoleN1(b *testing.B) { benchReassembly(b, 1, 8) }
func BenchmarkReassemblyMultiHoleN4(b *testing.B) { benchReassembly(b, 4, 8) }

// ---------------------------------------------------------------------
// Retransmission microbenchmark: one window with every 16th segment lost
// on the first flight, recovered via duplicate ACKs — go-back-N resends
// everything from the loss, SACK repairs only the four holes. Reports
// retransmitted bytes per recovered window alongside the usual
// throughput numbers; CI runs it as a smoke test for the recovery path.
// ---------------------------------------------------------------------

func benchRetransmit(b *testing.B, sack bool) {
	const segN = 64
	const segSz = 512
	const winSz = segN * segSz
	b.ReportAllocs()
	b.SetBytes(winSz)
	var retx uint64
	ackInfoOf := func(r tcpseg.RXResult) tcpseg.SegInfo {
		info := tcpseg.SegInfo{
			Seq: r.AckSeq, Ack: r.AckAck, Flags: packet.FlagACK, Window: r.AckWin,
		}
		copy(info.SACK[:], r.AckSACK[:r.AckSACKCnt])
		info.SACKCnt = r.AckSACKCnt
		return info
	}
	for i := 0; i < b.N; i++ {
		snd := &tcpseg.ProtoState{RxAvail: winSz, RemoteWin: winSz >> tcpseg.WindowScale, OOOCap: 4}
		sndPost := &tcpseg.PostState{RxSize: winSz, TxSize: winSz}
		rcv := &tcpseg.ProtoState{RxAvail: winSz, RemoteWin: winSz >> tcpseg.WindowScale, OOOCap: 4}
		rcvPost := &tcpseg.PostState{RxSize: winSz, TxSize: winSz}
		snd.SetSACKPerm(sack)
		rcv.SetSACKPerm(sack)
		tcpseg.ProcessHC(snd, sndPost, tcpseg.HCOp{Kind: tcpseg.HCTx, Bytes: winSz})

		var acks []tcpseg.SegInfo
		deliver := func(seg tcpseg.TXResult, drop bool) {
			retx += uint64(seg.RetxBytes)
			if drop {
				return
			}
			info := tcpseg.SegInfo{Seq: seg.Seq, Ack: seg.Ack, Flags: packet.FlagACK, Window: seg.Win, PayloadLen: seg.Len}
			if res := tcpseg.ProcessRX(rcv, rcvPost, &info, 0); res.SendAck {
				acks = append(acks, ackInfoOf(res))
			}
		}
		// First flight: every 16th segment lost.
		for {
			seg, ok := tcpseg.ProcessTX(snd, sndPost, segSz, 0)
			if !ok {
				break
			}
			deliver(seg, (seg.Seq/segSz)%16 == 0)
		}
		// Recovery rounds: loss-free from here.
		for round := 0; rcv.Ack != winSz; round++ {
			if round > 64 {
				b.Fatalf("recovery did not converge: rcv.Ack=%d", rcv.Ack)
			}
			pending := acks
			acks = nil
			progress := len(pending) > 0
			for i := range pending {
				tcpseg.ProcessRX(snd, sndPost, &pending[i], 0)
			}
			for {
				seg, ok := tcpseg.ProcessTX(snd, sndPost, segSz, 0)
				if !ok {
					break
				}
				progress = true
				deliver(seg, false)
			}
			if !progress {
				// Control-plane RTO: go-back-N reset.
				tcpseg.ProcessHC(snd, sndPost, tcpseg.HCOp{Kind: tcpseg.HCRetransmit})
			}
		}
	}
	b.ReportMetric(float64(retx)/float64(b.N), "retx-B/op")
}

// BenchmarkRetransmitSACKvsGBN compares the two recovery schemes on the
// identical loss pattern; the retx-B/op metric is the headline.
func BenchmarkRetransmitSACKvsGBN(b *testing.B) {
	b.Run("GBN", func(b *testing.B) { benchRetransmit(b, false) })
	b.Run("SACK", func(b *testing.B) { benchRetransmit(b, true) })
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment at
// Quick scale once per iteration and reports the headline metric; run
// cmd/flexbench -full for paper-scale sweeps.
package main

import (
	"testing"

	"flextoe/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := r.Run(experiments.Quick)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1CPUImpact regenerates Table 1: per-request CPU impact of
// TCP processing for Linux, Chelsio, TAS and FlexTOE.
func BenchmarkTable1CPUImpact(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Extensions regenerates Table 2: throughput with
// profiling, tcpdump, XDP and splicing extensions.
func BenchmarkTable2Extensions(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3ParallelismAblation regenerates Table 3: the five-step
// data-path parallelism breakdown.
func BenchmarkTable3ParallelismAblation(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Incast regenerates Table 4: congestion control under
// incast, on and off.
func BenchmarkTable4Incast(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5StatePartitioning verifies Table 5: per-stage connection
// state sizes.
func BenchmarkTable5StatePartitioning(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6TASBreakdown regenerates Table 6: TAS per-packet TCP/IP
// processing phases.
func BenchmarkTable6TASBreakdown(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig8MemcachedScalability regenerates Figure 8: memcached
// throughput vs server cores.
func BenchmarkFig8MemcachedScalability(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9LatencyCDF regenerates Figure 9: latency for all 16
// server/client stack combinations.
func BenchmarkFig9LatencyCDF(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10RPCThroughput regenerates Figure 10: RX/TX throughput at
// 250 and 1,000 cycles per RPC.
func BenchmarkFig10RPCThroughput(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11RPCLatency regenerates Figure 11: median/99p/99.99p RPC
// RTT vs message size.
func BenchmarkFig11RPCLatency(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12LargeRPC regenerates Figure 12: single-connection large
// RPC goodput, uni- and bidirectional.
func BenchmarkFig12LargeRPC(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13ConnScalability regenerates Figure 13: throughput vs
// number of established connections.
func BenchmarkFig13ConnScalability(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Generalization regenerates Figure 14: the BlueField and
// x86 ports across MSS values.
func BenchmarkFig14Generalization(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15LossRobustness regenerates Figure 15: throughput under
// injected packet loss.
func BenchmarkFig15LossRobustness(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16Fairness regenerates Figure 16: per-connection goodput
// distribution at line rate.
func BenchmarkFig16Fairness(b *testing.B) { runExperiment(b, "fig16") }
